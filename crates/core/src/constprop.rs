//! A third framework instance: sparse **constant propagation**.
//!
//! The paper's related-work section traces sparse analysis to constant
//! propagation (Reif & Lewis 1977; Wegman & Zadeck's conditional constant
//! propagation) and §2.9 claims any member of the baseline abstraction
//! family can be made sparse in two steps. This module substantiates the
//! claim with a *flat constant lattice* instance built entirely from the
//! existing machinery: the same pre-analysis, the same `D̂`/`Û` sets, the
//! same dependency generator, the same engines — only the value domain and
//! transfer function change.
//!
//! The domain is the classic flat lattice `⊥ ⊑ n ⊑ ⊤` per location, with
//! pointers delegated to the pre-analysis (constants don't track targets;
//! stores through pointers use the pre-analysis' points-to sets for their
//! def sets, exactly like the interval instance's D̂).

use crate::defuse::DefUse;
use crate::depgen::{self, DataDeps, DepGenOptions};
use crate::icfg::Icfg;
use crate::preanalysis::{self, PreAnalysis};
use crate::semantics;
use crate::sparse::{self, SparseSpec};
use crate::stats::AnalysisStats;
use sga_domains::{AbsLoc, Lattice};
use sga_ir::{BinOp, Cmd, Cp, Expr, Program, RelOp, UnOp};
use sga_utils::stats::{peak_rss_bytes, Phase};
use sga_utils::{FxHashMap, PMap};

/// The flat constant lattice.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Const {
    /// No value yet.
    Bot,
    /// Exactly this integer, on every run reaching the point.
    Val(i64),
    /// More than one value (or a non-constant source).
    Top,
}

impl Lattice for Const {
    fn bottom() -> Self {
        Const::Bot
    }

    fn le(&self, other: &Self) -> bool {
        matches!(
            (self, other),
            (Const::Bot, _) | (_, Const::Top) | (Const::Val(_), Const::Val(_))
        ) && match (self, other) {
            (Const::Val(a), Const::Val(b)) => a == b,
            _ => true,
        }
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (Const::Bot, x) | (x, Const::Bot) => *x,
            (Const::Val(a), Const::Val(b)) if a == b => *self,
            _ => Const::Top,
        }
    }
    // Flat lattices have finite height: default widen (= join) terminates.
}

/// The constant state: locations to flat constants.
pub type ConstState = PMap<AbsLoc, Const>;

/// Result of a constant-propagation run.
#[derive(Debug)]
pub struct ConstResult {
    /// Output bindings per control point (sparse: exactly `D̂(c)`).
    pub values: FxHashMap<Cp, ConstState>,
    /// Phase statistics.
    pub stats: AnalysisStats,
}

impl ConstResult {
    /// The constant bound for `l` at `cp`.
    pub fn value_at(&self, cp: Cp, l: &AbsLoc) -> Const {
        self.values
            .get(&cp)
            .and_then(|m| m.get(l))
            .copied()
            .unwrap_or(Const::Bot)
    }

    /// Number of point-location pairs proven constant.
    pub fn constants_found(&self) -> usize {
        self.values
            .values()
            .map(|m| m.iter().filter(|(_, v)| matches!(v, Const::Val(_))).count())
            .sum()
    }
}

/// Runs sparse constant propagation.
pub fn analyze(program: &Program) -> ConstResult {
    let total = Phase::start("total");
    let pre_phase = Phase::start("pre");
    let pre = preanalysis::run(program);
    let pre_time = pre_phase.stop();
    let icfg = Icfg::build(program, &pre);
    let dep_phase = Phase::start("dep");
    let du = crate::defuse::compute(program, &pre);
    let deps = depgen::generate(program, &pre, &du, DepGenOptions::default());
    let dep_time = dep_phase.stop();

    let mut stats = AnalysisStats {
        pre_time,
        dep_time,
        ..AnalysisStats::default()
    };
    stats.num_locs = du.locs.len();
    stats.dep_edges = deps.stats.final_edges;

    let spec = ConstSpec {
        program,
        pre: &pre,
        du: &du,
    };
    let fix = Phase::start("fix");
    let result = sparse::solve(program, &icfg, &deps, &spec);
    stats.fix_time = fix.stop();
    stats.iterations = result.iterations;
    stats.total_time = total.stop();
    stats.peak_mem_bytes = peak_rss_bytes();
    ConstResult {
        values: result.values,
        stats,
    }
}

/// Exposes the dependency structures for callers staging their own runs.
pub fn prepare(program: &Program) -> (PreAnalysis, Icfg, DefUse, DataDeps) {
    let pre = preanalysis::run(program);
    let icfg = Icfg::build(program, &pre);
    let du = crate::defuse::compute(program, &pre);
    let deps = depgen::generate(program, &pre, &du, DepGenOptions::default());
    (pre, icfg, du, deps)
}

struct ConstSpec<'p> {
    program: &'p Program,
    pre: &'p PreAnalysis,
    du: &'p DefUse,
}

impl ConstSpec<'_> {
    fn eval(&self, e: &Expr, s: &ConstState) -> Const {
        match e {
            Expr::Const(n) => Const::Val(*n),
            Expr::Var(x) => s.get(&AbsLoc::Var(*x)).copied().unwrap_or(Const::Bot),
            Expr::Field(x, f) => s.get(&AbsLoc::Field(*x, *f)).copied().unwrap_or(Const::Bot),
            Expr::Deref(_) | Expr::DerefField(_, _) => {
                // Loads join over the pre-analysis' targets.
                let mut targets = Vec::new();
                semantics::used_locs(self.program, e, &self.pre.state, &mut targets);
                let mut acc = Const::Bot;
                for l in targets {
                    acc = acc.join(&s.get(&l).copied().unwrap_or(Const::Bot));
                }
                // The used-locs set includes the pointer itself; joining it
                // in is sound but noisy — ⊤ is the honest answer unless all
                // agree.
                acc
            }
            // Addresses and unknowns are not integer constants.
            Expr::AddrOf(_) | Expr::AddrOfField(_, _) | Expr::AddrOfProc(_) | Expr::Unknown => {
                Const::Top
            }
            Expr::Unop(op, a) => match (op, self.eval(a, s)) {
                (_, Const::Bot) => Const::Bot,
                (UnOp::Neg, Const::Val(n)) => Const::Val(n.wrapping_neg()),
                (UnOp::Not, Const::Val(n)) => Const::Val(i64::from(n == 0)),
                (UnOp::BitNot, Const::Val(n)) => Const::Val(!n),
                _ => Const::Top,
            },
            Expr::Binop(op, a, b) => {
                let (va, vb) = (self.eval(a, s), self.eval(b, s));
                match (va, vb) {
                    (Const::Bot, _) | (_, Const::Bot) => Const::Bot,
                    (Const::Val(x), Const::Val(y)) => eval_binop(*op, x, y),
                    _ => Const::Top,
                }
            }
        }
    }
}

fn eval_binop(op: BinOp, x: i64, y: i64) -> Const {
    let cmp = |r: bool| Const::Val(i64::from(r));
    match op {
        BinOp::Add => Const::Val(x.wrapping_add(y)),
        BinOp::Sub => Const::Val(x.wrapping_sub(y)),
        BinOp::Mul => Const::Val(x.wrapping_mul(y)),
        BinOp::Div => {
            if y == 0 {
                Const::Top
            } else {
                Const::Val(x.wrapping_div(y))
            }
        }
        BinOp::Mod => {
            if y == 0 {
                Const::Top
            } else {
                Const::Val(x.wrapping_rem(y))
            }
        }
        BinOp::Cmp(RelOp::Lt) => cmp(x < y),
        BinOp::Cmp(RelOp::Le) => cmp(x <= y),
        BinOp::Cmp(RelOp::Gt) => cmp(x > y),
        BinOp::Cmp(RelOp::Ge) => cmp(x >= y),
        BinOp::Cmp(RelOp::Eq) => cmp(x == y),
        BinOp::Cmp(RelOp::Ne) => cmp(x != y),
        BinOp::And => cmp(x != 0 && y != 0),
        BinOp::Or => cmp(x != 0 || y != 0),
        BinOp::Bits => Const::Top,
    }
}

impl SparseSpec for ConstSpec<'_> {
    type L = AbsLoc;
    type V = Const;

    fn loc_of(&self, id: u32) -> AbsLoc {
        self.du.locs.loc(id)
    }

    fn initial(&self) -> ConstState {
        let mut s = PMap::new();
        for &p in &self.program.procs[self.program.main].params {
            s = s.insert(AbsLoc::Var(p), Const::Top);
        }
        s
    }

    fn transfer(&self, cp: Cp, pre_in: &ConstState, ret_in: &ConstState) -> ConstState {
        let joined = pre_in.union_with(ret_in, |_, a, b| a.join(b));
        let mut post = joined.clone();
        match self.program.cmd(cp) {
            Cmd::Skip | Cmd::Assume(_) => {
                // Constants don't refine on conditions (that's what makes
                // this *unconditional* constant propagation); assume nodes
                // just relay their refined variables.
            }
            Cmd::Assign(lv, e) | Cmd::Alloc(lv, e) => {
                let v = if matches!(self.program.cmd(cp), Cmd::Alloc(_, _)) {
                    Const::Top // an address, not an integer constant
                } else {
                    self.eval(e, pre_in)
                };
                let (targets, strong) = semantics::lval_targets(self.program, lv, &self.pre.state);
                if strong && targets.as_singleton().is_some() {
                    post = post.insert(targets.as_singleton().expect("checked"), v);
                } else {
                    for &l in &targets {
                        let old = post.get(&l).copied().unwrap_or(Const::Bot);
                        post = post.insert(l, old.join(&v));
                    }
                }
            }
            Cmd::Return(e) => {
                let v = match e {
                    Some(e) => self.eval(e, pre_in),
                    None => Const::Bot,
                };
                post = post.insert(AbsLoc::Var(self.program.procs[cp.proc].ret_var), v);
            }
            Cmd::Call { ret, args, .. } => {
                let mut ret_val = Const::Bot;
                let mut any_internal = false;
                for &t in self.pre.call_targets(cp) {
                    let callee = &self.program.procs[t];
                    if callee.is_external {
                        continue;
                    }
                    any_internal = true;
                    for (i, &p) in callee.params.iter().enumerate() {
                        let v = match args.get(i) {
                            Some(a) => self.eval(a, pre_in),
                            None => Const::Top,
                        };
                        post = post.insert(AbsLoc::Var(p), v);
                    }
                    let rv = ret_in
                        .get(&AbsLoc::Var(callee.ret_var))
                        .copied()
                        .unwrap_or(Const::Bot);
                    ret_val = ret_val.join(&rv);
                }
                let external = !any_internal
                    || self
                        .pre
                        .call_targets(cp)
                        .iter()
                        .any(|&t| self.program.procs[t].is_external);
                if external {
                    ret_val = ret_val.join(&Const::Top);
                }
                if let Some(lv) = ret {
                    let (targets, strong) =
                        semantics::lval_targets(self.program, lv, &self.pre.state);
                    if strong && targets.as_singleton().is_some() {
                        post = post.insert(targets.as_singleton().expect("checked"), ret_val);
                    } else {
                        for &l in &targets {
                            let old = post.get(&l).copied().unwrap_or(Const::Bot);
                            post = post.insert(l, old.join(&ret_val));
                        }
                    }
                }
            }
        }
        // Restrict to D̂(cp).
        let mut out = PMap::new();
        for l in self.du.defs(cp) {
            if let Some(v) = post.get(l) {
                if *v != Const::Bot {
                    out = out.insert(*l, *v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sga_cfront::parse;
    use sga_domains::lattice::laws::{check_join_laws, check_widen_narrow_laws};
    use sga_ir::{LVal, VarId};

    fn var(program: &Program, name: &str) -> VarId {
        program
            .vars
            .iter_enumerated()
            .find(|(_, v)| v.name == name)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    fn last_def(program: &Program, name: &str) -> Cp {
        let v = var(program, name);
        program
            .all_points()
            .filter(|cp| matches!(program.cmd(*cp), Cmd::Assign(LVal::Var(x), _) if *x == v))
            .last()
            .unwrap_or_else(|| panic!("no assignment to {name}"))
    }

    #[test]
    fn flat_lattice_laws() {
        let samples = [Const::Bot, Const::Val(0), Const::Val(7), Const::Top];
        for a in samples {
            for b in samples {
                for c in samples {
                    check_join_laws(&a, &b, &c);
                    check_widen_narrow_laws(&a, &b);
                }
            }
        }
    }

    #[test]
    fn propagates_through_expressions_and_calls() {
        let p = parse(
            "int scale(int x) { return x * 10; }
             int main() {
                int a = 4;
                int b = a + 1;
                int c = scale(b);
                return c;
             }",
        )
        .unwrap();
        let r = analyze(&p);
        assert_eq!(
            r.value_at(last_def(&p, "b"), &AbsLoc::Var(var(&p, "b"))),
            Const::Val(5)
        );
        assert_eq!(
            r.value_at(last_def(&p, "c"), &AbsLoc::Var(var(&p, "c"))),
            Const::Val(50)
        );
        assert!(r.constants_found() >= 3);
    }

    #[test]
    fn joins_to_top_at_merges() {
        let p = parse(
            "int main(int c) {
                int x;
                if (c) x = 1; else x = 2;
                int y = x;
                int z = 3;
                if (c) z = 3;  /* same value on both paths stays constant */
                int w = z;
                return y + w;
             }",
        )
        .unwrap();
        let r = analyze(&p);
        assert_eq!(
            r.value_at(last_def(&p, "y"), &AbsLoc::Var(var(&p, "y"))),
            Const::Top
        );
        assert_eq!(
            r.value_at(last_def(&p, "w"), &AbsLoc::Var(var(&p, "w"))),
            Const::Val(3)
        );
    }

    #[test]
    fn loop_carried_variable_goes_top() {
        let p = parse(
            "int main() {
                int i = 0;
                int k = 42;
                while (i < 9) { i = i + 1; }
                int m = k;
                return i + m;
             }",
        )
        .unwrap();
        let r = analyze(&p);
        // i varies; k is loop-invariant and stays constant.
        assert_eq!(
            r.value_at(last_def(&p, "m"), &AbsLoc::Var(var(&p, "m"))),
            Const::Val(42)
        );
        let i_def = last_def(&p, "i");
        assert_eq!(r.value_at(i_def, &AbsLoc::Var(var(&p, "i"))), Const::Top);
    }

    #[test]
    fn pointer_stores_weakly_join() {
        let p = parse(
            "int x; int y; int *p;
             int main(int c) {
                x = 7; y = 7;
                if (c) p = &x; else p = &y;
                *p = 7;          /* same constant: x and y stay 7 */
                int r = x;
                return r;
             }",
        )
        .unwrap();
        let r = analyze(&p);
        assert_eq!(
            r.value_at(last_def(&p, "r"), &AbsLoc::Var(var(&p, "r"))),
            Const::Val(7)
        );
    }

    #[test]
    fn agrees_with_interval_on_constants() {
        // Cross-instance check: wherever constprop proves `Val(n)`, the
        // interval instance must bound the location by [n, n] or better
        // lose-ly include it.
        let cfg = sga_cgen::GenConfig::sized(31, 1);
        let src = sga_cgen::generate(&cfg);
        let p = parse(&src).unwrap();
        let consts = analyze(&p);
        let itv = crate::interval::analyze(&p, crate::interval::Engine::Sparse);
        let mut checked = 0;
        for (cp, st) in &consts.values {
            for (l, v) in st.iter() {
                if let Const::Val(n) = v {
                    let iv = itv.value_at(*cp, l).itv;
                    assert!(
                        iv.contains(*n) || iv.is_bottom(),
                        "constprop says {l:?}={n} at {cp} but interval says {iv}"
                    );
                    checked += 1;
                }
            }
        }
        assert!(checked > 10, "too few constants to compare: {checked}");
    }
}
