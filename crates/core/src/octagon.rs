//! The packed relational (octagon) instance of §4 — the
//! `Octagon{vanilla,base,sparse}` analyzers of §6.2.
//!
//! Abstract locations are variable *packs*; abstract values are octagon
//! constraints over the pack's members. The design follows the paper:
//!
//! * **packing** ([`build_packs`]) — the syntactic heuristic of §6.2:
//!   variables appearing together in assignments/conditions/calls are
//!   grouped (scope-local, capped at [`PACK_SIZE_LIMIT`] = 10, "large packs
//!   … were split down"); singleton packs always exist so the projection
//!   `π_x` of §4.2 is defined;
//! * **transfer** — assignments whose right-hand side is octagonal
//!   (`y + c`) update each pack containing the target exactly; everything
//!   else goes through the interval projection, mirroring the program
//!   transformation `T` of §4.1 (replace out-of-pack variables by their
//!   projected values);
//! * **def/use** (§4.2) — `D̂(c) = pack(x)` and
//!   `Û(c) = pack(x) ∪ {⟪l⟫ | l ∈ V(e) − pack(x)}`, derived from the
//!   interval instance's [`DefUse`] by mapping defined variables to their
//!   packs and read variables to their singletons;
//! * engines — the same dense/sparse solvers as the interval instance,
//!   instantiated at pack granularity.
//!
//! Pointers, arrays and structures are "handled in the same way as the
//! interval analysis" (§6.2): here, the pre-analysis supplies points-to
//! facts, and memory writes through pointers *havoc* (forget) the affected
//! variables in every pack. Heap cells themselves are not tracked
//! relationally, matching practical packed analyses.

use crate::defuse::DefUse;
use crate::dense::{self, DenseSpec};
use crate::depgen::{self, DataDeps, DepGenOptions, DepSource};
use crate::icfg::{EdgeKind, Icfg, InEdge};
use crate::interval::AnalyzeOptions;
use crate::preanalysis::{self, PreAnalysis};
use crate::sparse::{self, SparseSpec};
use crate::stats::AnalysisStats;
use crate::widening::WideningPlan;
use sga_domains::{AbsLoc, Interval, Lattice, Octagon, Pack, PackId, PackSet, Thresholds};
use sga_ir::{BinOp, Cmd, Cond, Cp, Expr, LVal, ProcId, Program, RelOp, VarId};
use sga_utils::stats::{peak_rss_bytes, Phase};
use sga_utils::{FxHashMap, FxHashSet, Idx, IndexVec, PMap};

/// Maximum pack size before the heuristic refuses to merge further (§6.2).
pub const PACK_SIZE_LIMIT: usize = 10;

/// The packed relational state: packs to octagons (absent = ⊥).
pub type OctState = PMap<PackId, Octagon>;

fn collect_wto_nodes(items: &[sga_utils::graph::WtoItem], out: &mut Vec<usize>) {
    for item in items {
        match item {
            sga_utils::graph::WtoItem::Node(n) => out.push(*n),
            sga_utils::graph::WtoItem::Component(h, body) => {
                out.push(*h);
                collect_wto_nodes(body, out);
            }
        }
    }
}

/// Which octagon analyzer to run.
pub type Engine = crate::interval::Engine;

/// Result of an octagon analysis.
#[derive(Debug)]
pub struct OctagonResult {
    /// The engine used.
    pub engine: Engine,
    /// Post-states per control point.
    pub values: FxHashMap<Cp, OctState>,
    /// The pack set the analysis ran with.
    pub packs: PackSet,
    /// Phase statistics.
    pub stats: AnalysisStats,
}

impl OctagonResult {
    /// Projects variable `x` to an interval at `cp`, meeting the
    /// projections of every pack that contains `x`.
    pub fn itv_of(&self, cp: Cp, x: VarId) -> Interval {
        let Some(st) = self.values.get(&cp) else {
            return Interval::Bot;
        };
        project_all(&self.packs, st, x)
    }

    /// The tightest known bound on `x − y` at `cp`, if some pack relates
    /// them.
    pub fn diff_bound(&self, cp: Cp, x: VarId, y: VarId) -> Option<i64> {
        let st = self.values.get(&cp)?;
        let mut best: Option<i64> = None;
        for &pid in self.packs.packs_of(x) {
            let pack = self.packs.pack(pid);
            let (Some(ix), Some(iy)) = (pack.index_of(x), pack.index_of(y)) else {
                continue;
            };
            if let Some(oct) = st.get(&pid) {
                if let Some(c) = oct.diff_bound(ix, iy) {
                    best = Some(best.map_or(c, |b| b.min(c)));
                }
            }
        }
        best
    }
}

/// Runs the chosen octagon analyzer.
pub fn analyze(program: &Program, engine: Engine) -> OctagonResult {
    analyze_with(program, engine, AnalyzeOptions::default())
}

/// Runs the chosen octagon analyzer with analysis options (dependency
/// generation + widening strategy; `semi_sparse` is interval-only and
/// ignored here).
pub fn analyze_with(program: &Program, engine: Engine, options: AnalyzeOptions) -> OctagonResult {
    let depgen_options = options.depgen;
    let total = Phase::start("total");
    let pre_phase = Phase::start("pre");
    let pre = preanalysis::run(program);
    let pre_time = pre_phase.stop();
    let icfg = Icfg::build(program, &pre);
    let packs = build_packs(program);
    let du = crate::defuse::compute(program, &pre);
    let odu = OctDefUse::compute(program, &pre, &du, &packs);
    let plan = WideningPlan::for_program(program, options.widening);

    let mut stats = AnalysisStats {
        pre_time,
        widening: options.widening.strategy.name(),
        ..AnalysisStats::default()
    };
    stats.num_locs = packs.len();
    stats.avg_defs = odu.avg_def_size();
    stats.avg_uses = odu.avg_use_size();

    let sem = OctSemantics {
        program,
        pre: &pre,
        packs: &packs,
        fresh_packs: fresh_packs_of(program, &packs),
    };

    let values = match engine {
        Engine::Vanilla | Engine::Base => {
            let spec = OctDenseSpec {
                sem: &sem,
                localize: engine == Engine::Base,
                in_packs: odu.in_packs.clone(),
                out_packs: odu.out_packs.clone(),
            };
            let fix = Phase::start("fix");
            let result = dense::solve_with(program, &icfg, &spec, &plan, &options.budget);
            stats.fix_time = fix.stop();
            stats.iterations = result.iterations;
            stats.degraded = result.degraded;
            result.post
        }
        Engine::Sparse => {
            let dep_phase = Phase::start("dep");
            let deps = depgen::generate_from(program, &odu, depgen_options);
            stats.dep_time = dep_phase.stop();
            stats.dep_edges_raw = deps.stats.raw_edges;
            stats.dep_edges = deps.stats.final_edges;
            let spec = OctSparseSpec {
                sem: &sem,
                odu: &odu,
            };
            let fix = Phase::start("fix");
            let result = sparse::solve_backend(
                options.dep_backend,
                program,
                &icfg,
                &deps,
                &spec,
                &plan,
                &options.budget,
            );
            stats.fix_time = fix.stop();
            stats.iterations = result.iterations;
            stats.degraded = result.degraded;
            result.values
        }
    };

    stats.total_time = total.stop();
    stats.peak_mem_bytes = peak_rss_bytes();
    OctagonResult {
        engine,
        values,
        packs,
        stats,
    }
}

/// Solves the sparse octagon analysis under `options` and re-checks
/// `f̂_c(X̂) ⊑ X̂` at every point with [`crate::validate`]'s independent
/// transfer pass. Lives here because the octagon spec types are private;
/// [`crate::validate::check_octagon_sparse`] is the public entry point.
pub(crate) fn sparse_post_fixpoint_check(
    program: &Program,
    options: AnalyzeOptions,
) -> crate::validate::CheckReport {
    let pre = preanalysis::run(program);
    let icfg = Icfg::build(program, &pre);
    let packs = build_packs(program);
    let du = crate::defuse::compute(program, &pre);
    let odu = OctDefUse::compute(program, &pre, &du, &packs);
    let plan = WideningPlan::for_program(program, options.widening);
    let deps = depgen::generate_from(program, &odu, options.depgen);
    let sem = OctSemantics {
        program,
        pre: &pre,
        packs: &packs,
        fresh_packs: fresh_packs_of(program, &packs),
    };
    let spec = OctSparseSpec {
        sem: &sem,
        odu: &odu,
    };
    let result = sparse::solve_backend(
        options.dep_backend,
        program,
        &icfg,
        &deps,
        &spec,
        &plan,
        &options.budget,
    );
    crate::validate::check_sparse_post_fixpoint(program, &deps, &spec, &result.values)
}

/// Builds the octagon dependency structures without running the fixpoint
/// (used by the benchmark harness for phase-separated timing).
pub fn prepare_deps(program: &Program) -> (PreAnalysis, PackSet, DataDeps) {
    let pre = preanalysis::run(program);
    let packs = build_packs(program);
    let du = crate::defuse::compute(program, &pre);
    let odu = OctDefUse::compute(program, &pre, &du, &packs);
    let deps = depgen::generate_from(program, &odu, DepGenOptions::default());
    (pre, packs, deps)
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

/// The syntactic packing heuristic of §6.2: group variables with syntactic
/// locality (same assignment, condition, or call binding), refuse merges
/// beyond [`PACK_SIZE_LIMIT`], and give every variable a singleton pack.
pub fn build_packs(program: &Program) -> PackSet {
    // Union-find over variables with size-capped merging.
    let n = program.vars.len();
    let mut parent: Vec<usize> = (0..n).collect();
    let mut size: Vec<usize> = vec![1; n];

    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let union = |parent: &mut Vec<usize>, size: &mut Vec<usize>, a: VarId, b: VarId| {
        let (ra, rb) = (find(parent, a.index()), find(parent, b.index()));
        if ra == rb {
            return;
        }
        if size[ra] + size[rb] > PACK_SIZE_LIMIT {
            return; // §6.2: keep packs below the threshold
        }
        let (big, small) = if size[ra] >= size[rb] {
            (ra, rb)
        } else {
            (rb, ra)
        };
        parent[small] = big;
        size[big] += size[small];
    };

    let group = |parent: &mut Vec<usize>, size: &mut Vec<usize>, vars: &[VarId]| {
        for w in vars.windows(2) {
            union(parent, size, w[0], w[1]);
        }
    };

    for (pid, proc) in program.procs.iter_enumerated() {
        if proc.is_external {
            continue;
        }
        for node in &proc.nodes {
            let mut vars: Vec<VarId> = Vec::new();
            match &node.cmd {
                Cmd::Assign(LVal::Var(x), e) => {
                    vars.push(*x);
                    e.vars(&mut vars);
                }
                Cmd::Assume(c) => {
                    c.lhs.vars(&mut vars);
                    c.rhs.vars(&mut vars);
                }
                Cmd::Return(Some(e)) => {
                    vars.push(proc.ret_var);
                    e.vars(&mut vars);
                }
                Cmd::Call { ret, callee, args } => {
                    // Actual/formal pairs "capture relations across
                    // procedure boundaries" (§6.2).
                    let targets: Vec<ProcId> = match callee {
                        sga_ir::Callee::Direct(t) => vec![*t],
                        sga_ir::Callee::Indirect(_) => Vec::new(),
                    };
                    for t in targets {
                        let callee_proc = &program.procs[t];
                        if callee_proc.is_external {
                            continue;
                        }
                        for (i, &p) in callee_proc.params.iter().enumerate() {
                            let mut pair = vec![p];
                            if let Some(a) = args.get(i) {
                                a.vars(&mut pair);
                            }
                            group(&mut parent, &mut size, &pair);
                        }
                        if let Some(LVal::Var(x)) = ret {
                            group(&mut parent, &mut size, &[*x, callee_proc.ret_var]);
                        }
                    }
                }
                _ => {}
            }
            vars.sort_unstable();
            vars.dedup();
            group(&mut parent, &mut size, &vars);
        }
        let _ = pid;
    }

    // Loop locality (§6.2: "abstract locations involved in … loops are
    // grouped together"): variables of linear statements within the same
    // WTO component (loop) get grouped, still size-capped.
    for (pid, proc) in program.procs.iter_enumerated() {
        if proc.is_external {
            continue;
        }
        let _ = pid;
        let wto = sga_utils::graph::weak_topological_order(&proc.cfg_view(), proc.entry.index());
        let mut stack: Vec<&sga_utils::graph::WtoItem> = wto.items.iter().collect();
        while let Some(item) = stack.pop() {
            if let sga_utils::graph::WtoItem::Component(head, body) = item {
                let mut nodes: Vec<usize> = vec![*head];
                collect_wto_nodes(body, &mut nodes);
                let mut vars: Vec<VarId> = Vec::new();
                for &n in &nodes {
                    match &proc.nodes[sga_ir::NodeId::new(n)].cmd {
                        Cmd::Assign(LVal::Var(x), e) if !matches!(linearize(e), Lin::Other) => {
                            vars.push(*x);
                            e.vars(&mut vars);
                        }
                        Cmd::Assume(c) => {
                            c.lhs.vars(&mut vars);
                            c.rhs.vars(&mut vars);
                        }
                        _ => {}
                    }
                }
                vars.sort_unstable();
                vars.dedup();
                group(&mut parent, &mut size, &vars);
                stack.extend(body.iter());
            }
        }
    }

    // Collect classes.
    let mut classes: FxHashMap<usize, Vec<VarId>> = FxHashMap::default();
    for v in 0..n {
        classes
            .entry(find(&mut parent, v))
            .or_default()
            .push(VarId::new(v));
    }
    let mut packs: Vec<Pack> = classes.into_values().map(Pack::new).collect();
    // Deterministic order.
    packs.sort();
    PackSet::new(packs)
}

// ---------------------------------------------------------------------------
// Semantics
// ---------------------------------------------------------------------------

/// Linear shapes an octagon can handle exactly or near-exactly.
#[derive(Clone, Copy, Debug)]
enum Lin {
    Const(i64),
    VarPlus(VarId, i64),
    /// `y + z` — evaluated from the pack's sum constraints when possible.
    VarSum(VarId, VarId),
    /// `y − z` — evaluated from the pack's difference constraints.
    VarDiff(VarId, VarId),
    Other,
}

fn linearize(e: &Expr) -> Lin {
    match e {
        Expr::Const(n) => Lin::Const(*n),
        Expr::Var(x) => Lin::VarPlus(*x, 0),
        Expr::Binop(BinOp::Add, a, b) => match (&**a, &**b) {
            (Expr::Var(x), Expr::Const(c)) | (Expr::Const(c), Expr::Var(x)) => Lin::VarPlus(*x, *c),
            (Expr::Var(y), Expr::Var(z)) => Lin::VarSum(*y, *z),
            _ => Lin::Other,
        },
        Expr::Binop(BinOp::Sub, a, b) => match (&**a, &**b) {
            (Expr::Var(x), Expr::Const(c)) => Lin::VarPlus(*x, -*c),
            (Expr::Var(y), Expr::Var(z)) => Lin::VarDiff(*y, *z),
            _ => Lin::Other,
        },
        _ => Lin::Other,
    }
}

struct OctSemantics<'p> {
    program: &'p Program,
    pre: &'p PreAnalysis,
    packs: &'p PackSet,
    /// Per procedure: packs containing any variable owned by the procedure.
    /// They become unconstrained (⊤) at the procedure's entry — each
    /// activation's locals/params/temps start with arbitrary values.
    fresh_packs: IndexVec<ProcId, Vec<PackId>>,
}

/// Packs containing at least one variable owned by each procedure.
fn fresh_packs_of(program: &Program, packs: &PackSet) -> IndexVec<ProcId, Vec<PackId>> {
    let mut fresh: IndexVec<ProcId, FxHashSet<PackId>> =
        IndexVec::from_elem_n(FxHashSet::default(), program.procs.len());
    for (v, info) in program.vars.iter_enumerated() {
        if let Some(owner) = info.kind.owner() {
            fresh[owner].extend(packs.packs_of(v).iter().copied());
        }
    }
    fresh
        .into_iter()
        .map(|set| {
            let mut v: Vec<PackId> = set.into_iter().collect();
            v.sort_unstable();
            v
        })
        .collect()
}

impl OctSemantics<'_> {
    /// `π_x`: the interval of `x`, met across every pack containing it
    /// (the singleton pack guarantees at least one projection exists).
    fn project_var(&self, st: &OctState, x: VarId) -> Interval {
        project_all(self.packs, st, x)
    }

    /// Interval evaluation of an arbitrary expression under projections —
    /// the `T` transformation of §4.1 collapsed into evaluation.
    fn eval_itv(&self, st: &OctState, e: &Expr) -> Interval {
        match e {
            Expr::Const(n) => Interval::constant(*n),
            Expr::Var(x) => self.project_var(st, *x),
            Expr::Binop(op, a, b) => {
                let (ia, ib) = (self.eval_itv(st, a), self.eval_itv(st, b));
                match op {
                    BinOp::Add => ia.add(&ib),
                    BinOp::Sub => ia.sub(&ib),
                    BinOp::Mul => ia.mul(&ib),
                    BinOp::Div => ia.div(&ib),
                    BinOp::Mod => ia.rem(&ib),
                    BinOp::Cmp(rel) => ia.cmp_result(*rel, &ib),
                    _ => Interval::top(),
                }
            }
            Expr::Unop(sga_ir::UnOp::Neg, a) => self.eval_itv(st, a).neg(),
            // Loads, address-ofs, unknowns: numerically unconstrained.
            _ => Interval::top(),
        }
    }

    /// `x := e` on every pack containing `x`.
    fn assign_var(&self, st: &OctState, x: VarId, e: &Expr) -> OctState {
        let lin = linearize(e);
        let mut out = st.clone();
        for &pid in self.packs.packs_of(x) {
            let Some(oct) = st.get(&pid) else { continue }; // strict on ⊥
            let pack = self.packs.pack(pid);
            let ix = pack.index_of(x).expect("pack contains x");
            let new = match lin {
                Lin::Const(c) => oct.assign_interval(ix, &Interval::constant(c)),
                Lin::VarPlus(y, c) => match pack.index_of(y) {
                    Some(iy) => oct.assign_var_plus(ix, iy, c),
                    None => oct.assign_interval(ix, &self.eval_itv(st, e)),
                },
                Lin::VarSum(y, z) => match (pack.index_of(y), pack.index_of(z)) {
                    (Some(iy), Some(iz)) if iy != iz => {
                        oct.assign_interval(ix, &oct.sum_interval(iy, iz))
                    }
                    _ => oct.assign_interval(ix, &self.eval_itv(st, e)),
                },
                Lin::VarDiff(y, z) => match (pack.index_of(y), pack.index_of(z)) {
                    (Some(iy), Some(iz)) if iy != iz => {
                        oct.assign_interval(ix, &oct.diff_interval(iy, iz))
                    }
                    _ => oct.assign_interval(ix, &self.eval_itv(st, e)),
                },
                Lin::Other => oct.assign_interval(ix, &self.eval_itv(st, e)),
            };
            out = out.insert(pid, new);
        }
        out
    }

    /// Forgets every constraint on `x` (memory writes through pointers,
    /// unknown call effects).
    fn havoc_var(&self, st: &OctState, x: VarId) -> OctState {
        let mut out = st.clone();
        for &pid in self.packs.packs_of(x) {
            let Some(oct) = st.get(&pid) else { continue };
            let pack = self.packs.pack(pid);
            let ix = pack.index_of(x).expect("pack contains x");
            out = out.insert(pid, oct.forget(ix));
        }
        out
    }

    /// Variables a store through `lv` may clobber, per the pre-analysis.
    fn clobbered_vars(&self, lv: &LVal) -> Vec<VarId> {
        match lv {
            LVal::Var(x) => vec![*x],
            LVal::Field(_, _) => Vec::new(), // fields are not packed
            LVal::Deref(p) | LVal::DerefField(p, _) => {
                let v = self.pre.state.get(&AbsLoc::Var(*p));
                v.deref_targets()
                    .iter()
                    .filter_map(|l| match l {
                        AbsLoc::Var(t) => Some(*t),
                        _ => None,
                    })
                    .collect()
            }
        }
    }

    /// Refines with `assume(cond)`.
    fn refine(&self, st: &OctState, cond: &Cond) -> OctState {
        let mut out = st.clone();
        out = self.refine_side(&out, &cond.lhs, cond.op, &cond.rhs);
        out = self.refine_side(&out, &cond.rhs, cond.op.swap(), &cond.lhs);
        out
    }

    fn refine_side(&self, st: &OctState, lhs: &Expr, op: RelOp, rhs: &Expr) -> OctState {
        let Expr::Var(x) = lhs else { return st.clone() };
        let rhs_lin = linearize(rhs);
        let rhs_itv = self.eval_itv(st, rhs);
        let mut out = st.clone();
        for &pid in self.packs.packs_of(*x) {
            let Some(oct) = st.get(&pid) else { continue };
            let pack = self.packs.pack(pid);
            let ix = pack.index_of(*x).expect("pack contains x");
            let new = match rhs_lin {
                Lin::Const(c) => oct.assume_const(ix, op, c),
                Lin::VarPlus(y, c) => match pack.index_of(y) {
                    Some(iy) => oct.assume_var(ix, op, iy, c),
                    None => assume_interval(oct, ix, op, &rhs_itv),
                },
                _ => assume_interval(oct, ix, op, &rhs_itv),
            };
            out = out.insert(pid, new);
        }
        out
    }

    /// The full-state node transfer (calls are the identity; parameter and
    /// return binding happen on edges / in the sparse call case).
    fn transfer(&self, cp: Cp, st: &OctState) -> OctState {
        if cp.node == self.program.procs[cp.proc].entry {
            // A fresh activation: the procedure's own packs are
            // unconstrained, whatever flowed in.
            let mut out = st.clone();
            for &pid in &self.fresh_packs[cp.proc] {
                out = out.insert(pid, Octagon::top(self.packs.pack(pid).len()));
            }
            return out;
        }
        match self.program.cmd(cp) {
            Cmd::Skip | Cmd::Call { .. } => st.clone(),
            Cmd::Assign(LVal::Var(x), e) => self.assign_var(st, *x, e),
            Cmd::Assign(lv, _) | Cmd::Alloc(lv, _) => {
                let mut out = st.clone();
                for v in self.clobbered_vars(lv) {
                    out = self.havoc_var(&out, v);
                }
                out
            }
            Cmd::Assume(cond) => self.refine(st, cond),
            Cmd::Return(e) => {
                let ret = self.program.procs[cp.proc].ret_var;
                match e {
                    Some(e) => self.assign_var(st, ret, e),
                    None => self.havoc_var(st, ret),
                }
            }
        }
    }

    /// Binds actuals to formals at a call edge.
    fn bind_args(&self, callee: ProcId, args: &[Expr], st: &OctState) -> OctState {
        let mut out = st.clone();
        for (i, &p) in self.program.procs[callee].params.iter().enumerate() {
            out = match args.get(i) {
                Some(a) => self.assign_var(&out, p, a),
                None => self.havoc_var(&out, p),
            };
        }
        out
    }

    /// Binds the callee's return variable into the call's return l-value.
    fn bind_return(&self, callee: ProcId, ret: Option<&LVal>, st: &OctState) -> OctState {
        match ret {
            Some(LVal::Var(x)) => {
                let rv = self.program.procs[callee].ret_var;
                self.assign_var(st, *x, &Expr::Var(rv))
            }
            Some(lv) => {
                let mut out = st.clone();
                for v in self.clobbered_vars(lv) {
                    out = self.havoc_var(&out, v);
                }
                out
            }
            None => st.clone(),
        }
    }

    /// External call: the return target becomes unconstrained.
    fn bind_external(&self, ret: Option<&LVal>, st: &OctState) -> OctState {
        match ret {
            Some(LVal::Var(x)) => self.havoc_var(st, *x),
            Some(lv) => {
                let mut out = st.clone();
                for v in self.clobbered_vars(lv) {
                    out = self.havoc_var(&out, v);
                }
                out
            }
            None => st.clone(),
        }
    }

    /// The state entering `main`: every pack unconstrained.
    fn initial(&self) -> OctState {
        let mut st = PMap::new();
        for (pid, pack) in self.packs.iter() {
            st = st.insert(pid, Octagon::top(pack.len()));
        }
        st
    }
}

/// The meet of `x`'s projections over all packs containing it. ⊥ when no
/// pack binds it (strict states).
fn project_all(packs: &PackSet, st: &OctState, x: VarId) -> Interval {
    let mut acc: Option<Interval> = None;
    for &pid in packs.packs_of(x) {
        if let Some(oct) = st.get(&pid) {
            let ix = packs.pack(pid).index_of(x).expect("pack contains x");
            let proj = oct.project(ix);
            acc = Some(match acc {
                Some(a) => a.meet(&proj),
                None => proj,
            });
        }
    }
    acc.unwrap_or(Interval::Bot)
}

/// `x ⋈ [lo, hi]` as octagon constraints.
fn assume_interval(oct: &Octagon, ix: usize, op: RelOp, itv: &Interval) -> Octagon {
    use sga_domains::interval::Bound;
    let Interval::Range(lo, hi) = *itv else {
        return Octagon::Bot;
    };
    match op {
        RelOp::Lt | RelOp::Le => {
            let slack = i64::from(op == RelOp::Lt);
            match hi {
                Bound::Int(h) => oct.add_upper(ix, h - slack),
                _ => oct.clone(),
            }
        }
        RelOp::Gt | RelOp::Ge => {
            let slack = i64::from(op == RelOp::Gt);
            match lo {
                Bound::Int(l) => oct.add_lower(ix, l + slack),
                _ => oct.clone(),
            }
        }
        RelOp::Eq => {
            let mut out = oct.clone();
            if let Bound::Int(h) = hi {
                out = out.add_upper(ix, h);
            }
            if let Bound::Int(l) = lo {
                out = out.add_lower(ix, l);
            }
            out
        }
        RelOp::Ne => oct.clone(),
    }
}

// ---------------------------------------------------------------------------
// Def/use at pack granularity (§4.2)
// ---------------------------------------------------------------------------

/// Pack-level def/use sets and summaries; also the octagon [`DepSource`].
pub struct OctDefUse {
    def_ids: FxHashMap<Cp, Vec<u32>>,
    use_ids: FxHashMap<Cp, Vec<u32>>,
    real: FxHashMap<Cp, FxHashSet<u32>>,
    inter: Vec<(u32, Cp, Cp, bool)>,
    routes: FxHashMap<Cp, FxHashMap<u32, (bool, Vec<Cp>)>>,
    /// Packs flowing into each procedure (localization restriction).
    pub in_packs: IndexVec<ProcId, FxHashSet<PackId>>,
    /// Packs flowing out of each procedure.
    pub out_packs: IndexVec<ProcId, FxHashSet<PackId>>,
}

impl OctDefUse {
    /// Derives pack-level sets from the interval instance's [`DefUse`].
    pub fn compute(
        program: &Program,
        pre: &PreAnalysis,
        du: &DefUse,
        packs: &PackSet,
    ) -> OctDefUse {
        let var_of = |l: &AbsLoc| -> Option<VarId> {
            match l {
                AbsLoc::Var(v) => Some(*v),
                _ => None,
            }
        };
        let packs_of = |v: VarId| packs.packs_of(v).iter().map(|p| p.0);
        let singleton = |v: VarId| packs.singleton_id(v).map(|p| p.0);

        let mut def_ids: FxHashMap<Cp, Vec<u32>> = FxHashMap::default();
        let mut use_ids: FxHashMap<Cp, Vec<u32>> = FxHashMap::default();
        let mut real: FxHashMap<Cp, FxHashSet<u32>> = FxHashMap::default();

        let fresh = fresh_packs_of(program, packs);
        for (cp, sets) in &du.sets {
            let mut d: FxHashSet<u32> = FxHashSet::default();
            let mut u: FxHashSet<u32> = FxHashSet::default();
            let mut r: FxHashSet<u32> = FxHashSet::default();
            if cp.node == program.procs[cp.proc].entry {
                // Fresh packs originate (⊤) at their procedure's entry.
                for &pid in &fresh[cp.proc] {
                    d.insert(pid.0);
                    r.insert(pid.0);
                }
            }
            // Real defs: every pack containing a defined variable.
            for v in sets.real_defs.iter().filter_map(var_of) {
                for p in packs_of(v) {
                    d.insert(p);
                    u.insert(p); // §4.2: Û ⊇ pack(x)
                    r.insert(p);
                }
            }
            // Real uses: singleton packs (projections).
            for v in sets.real_uses.iter().filter_map(var_of) {
                if let Some(p) = singleton(v) {
                    u.insert(p);
                    r.insert(p);
                }
            }
            // Relay parts: whole packs flow through calls/entries/exits.
            for v in sets.defs.iter().filter_map(var_of) {
                if !sets.real_defs.contains(&AbsLoc::Var(v)) {
                    for p in packs_of(v) {
                        d.insert(p);
                        u.insert(p);
                    }
                }
            }
            // Relayed uses stay uses only; at calls, the dependency
            // generator routes them to the callee entry directly (the same
            // pre/return separation as the interval instance).
            for v in sets.uses.iter().filter_map(var_of) {
                if !sets.real_uses.contains(&AbsLoc::Var(v)) {
                    for p in packs_of(v) {
                        u.insert(p);
                    }
                }
            }
            // Entry/exit relays also define what they relay.
            if cp.node == program.procs[cp.proc].entry || cp.node == program.procs[cp.proc].exit {
                for v in sets.uses.iter().filter_map(var_of) {
                    for p in packs_of(v) {
                        d.insert(p);
                    }
                }
            }
            let mut dv: Vec<u32> = d.into_iter().collect();
            dv.sort_unstable();
            let mut uv: Vec<u32> = u.into_iter().collect();
            uv.sort_unstable();
            def_ids.insert(*cp, dv);
            use_ids.insert(*cp, uv);
            real.insert(*cp, r);
        }

        // Pack-level summaries and interprocedural edges.
        let nprocs = program.procs.len();
        let mut sum_def_packs: IndexVec<ProcId, FxHashSet<u32>> =
            IndexVec::from_elem_n(FxHashSet::default(), nprocs);
        let mut sum_use_packs: IndexVec<ProcId, FxHashSet<u32>> =
            IndexVec::from_elem_n(FxHashSet::default(), nprocs);
        for (pid, _) in program.procs.iter_enumerated() {
            for v in du.summary_defs[pid].iter().filter_map(var_of) {
                sum_def_packs[pid].extend(packs_of(v));
            }
            for v in du.summary_uses[pid].iter().filter_map(var_of) {
                sum_use_packs[pid].extend(packs_of(v));
            }
        }

        let mut inter: Vec<(u32, Cp, Cp, bool)> = Vec::new();
        let mut in_packs: IndexVec<ProcId, FxHashSet<PackId>> =
            IndexVec::from_elem_n(FxHashSet::default(), nprocs);
        let mut out_packs: IndexVec<ProcId, FxHashSet<PackId>> =
            IndexVec::from_elem_n(FxHashSet::default(), nprocs);
        for (pid, proc) in program.procs.iter_enumerated() {
            let mut inp: FxHashSet<PackId> =
                sum_use_packs[pid].iter().map(|&p| PackId(p)).collect();
            for &p in &proc.params {
                inp.extend(packs.packs_of(p).iter().copied());
            }
            in_packs[pid] = inp;
            let mut outp: FxHashSet<PackId> =
                sum_def_packs[pid].iter().map(|&p| PackId(p)).collect();
            outp.extend(packs.packs_of(proc.ret_var).iter().copied());
            out_packs[pid] = outp;
        }
        let mut routes: FxHashMap<Cp, FxHashMap<u32, (bool, Vec<Cp>)>> = FxHashMap::default();
        for (pid, proc) in program.procs.iter_enumerated() {
            if proc.is_external {
                continue;
            }
            for (nid, node) in proc.nodes.iter_enumerated() {
                if !matches!(node.cmd, Cmd::Call { .. }) {
                    continue;
                }
                let cp = Cp::new(pid, nid);
                let mut per_loc: FxHashMap<u32, (bool, Vec<Cp>)> = FxHashMap::default();
                for &t_pid in pre.call_targets(cp) {
                    let callee = &program.procs[t_pid];
                    if callee.is_external {
                        continue;
                    }
                    let entry = Cp::new(t_pid, callee.entry);
                    let exit = Cp::new(t_pid, callee.exit);
                    // Parameter packs travel over explicit call → entry
                    // edges; callee-used packs route def → entry directly.
                    for &p in &proc_param_packs(program, packs, t_pid) {
                        inter.push((p.0, cp, entry, false));
                    }
                    for &p in &sum_use_packs[t_pid] {
                        per_loc
                            .entry(p)
                            .or_insert((false, Vec::new()))
                            .1
                            .push(entry);
                    }
                    for &p in &out_packs[t_pid] {
                        inter.push((p.0, exit, cp, true));
                    }
                }
                if per_loc.is_empty() {
                    continue;
                }
                let real_here = &real[&cp];
                let defs_here = &def_ids[&cp];
                for (id, (self_edge, _)) in per_loc.iter_mut() {
                    *self_edge = real_here.contains(id) || defs_here.binary_search(id).is_ok();
                }
                routes.insert(cp, per_loc);
            }
        }

        OctDefUse {
            def_ids,
            use_ids,
            real,
            inter,
            routes,
            in_packs,
            out_packs,
        }
    }

    /// Average `|D̂(c)|` in packs.
    pub fn avg_def_size(&self) -> f64 {
        avg(self.def_ids.values().map(Vec::len))
    }

    /// Average `|Û(c)|` in packs.
    pub fn avg_use_size(&self) -> f64 {
        avg(self.use_ids.values().map(Vec::len))
    }
}

fn proc_param_packs(program: &Program, packs: &PackSet, pid: ProcId) -> Vec<PackId> {
    let mut out: Vec<PackId> = Vec::new();
    for &p in &program.procs[pid].params {
        out.extend(packs.packs_of(p).iter().copied());
    }
    out.sort_unstable();
    out.dedup();
    out
}

fn avg(sizes: impl Iterator<Item = usize>) -> f64 {
    let (mut n, mut total) = (0usize, 0usize);
    for s in sizes {
        n += 1;
        total += s;
    }
    if n == 0 {
        0.0
    } else {
        total as f64 / n as f64
    }
}

impl DepSource for OctDefUse {
    fn defs(&self, cp: Cp) -> &[u32] {
        self.def_ids.get(&cp).map_or(&[], Vec::as_slice)
    }

    fn uses(&self, cp: Cp) -> &[u32] {
        self.use_ids.get(&cp).map_or(&[], Vec::as_slice)
    }

    fn is_real(&self, cp: Cp, loc: u32) -> bool {
        self.real.get(&cp).is_some_and(|r| r.contains(&loc))
    }

    fn use_routes(&self, cp: Cp, loc: u32) -> depgen::UseRoutes<'_> {
        match self.routes.get(&cp).and_then(|m| m.get(&loc)) {
            Some((self_edge, entries)) => depgen::UseRoutes {
                self_edge: *self_edge,
                entries: entries.as_slice(),
            },
            None => depgen::UseRoutes {
                self_edge: true,
                entries: &[],
            },
        }
    }

    fn inter_edges(&self, sink: &mut dyn FnMut(u32, Cp, Cp, bool)) {
        for &(l, a, b, k) in &self.inter {
            sink(l, a, b, k);
        }
    }
}

// ---------------------------------------------------------------------------
// Engine specs
// ---------------------------------------------------------------------------

struct OctDenseSpec<'p> {
    sem: &'p OctSemantics<'p>,
    localize: bool,
    in_packs: IndexVec<ProcId, FxHashSet<PackId>>,
    out_packs: IndexVec<ProcId, FxHashSet<PackId>>,
}

fn join_st(a: &OctState, b: &OctState) -> OctState {
    a.union_with(b, |_, x, y| x.join(y))
}

impl DenseSpec for OctDenseSpec<'_> {
    type St = OctState;

    fn bottom(&self) -> OctState {
        PMap::new()
    }

    fn initial(&self) -> OctState {
        self.sem.initial()
    }

    fn transfer(&self, cp: Cp, input: &OctState) -> OctState {
        self.sem.transfer(cp, input)
    }

    fn edge(
        &self,
        dst: Cp,
        edge: &InEdge,
        src_post: &OctState,
        lookup: &dyn Fn(Cp) -> Option<OctState>,
    ) -> OctState {
        let program = self.sem.program;
        match edge.kind {
            EdgeKind::Intra => src_post.clone(),
            EdgeKind::Call { site } => {
                let Cmd::Call { args, .. } = program.cmd(site) else {
                    unreachable!("call edge from non-call site")
                };
                let bound = self.sem.bind_args(dst.proc, args, src_post);
                if self.localize {
                    let keep = &self.in_packs[dst.proc];
                    bound.filter(|pid, _| keep.contains(pid))
                } else {
                    bound
                }
            }
            EdgeKind::Return { site } => {
                let callee = edge.src.proc;
                let Cmd::Call { ret, .. } = program.cmd(site) else {
                    unreachable!("return edge without call site")
                };
                if self.localize {
                    let keep = &self.out_packs[callee];
                    let effects = src_post.filter(|pid, _| keep.contains(pid));
                    let caller = lookup(site).unwrap_or_default();
                    let merged = join_st(&caller, &effects);
                    self.sem.bind_return(callee, ret.as_ref(), &merged)
                } else {
                    self.sem.bind_return(callee, ret.as_ref(), src_post)
                }
            }
            EdgeKind::ExternalRet { site } => {
                let Cmd::Call { ret, .. } = program.cmd(site) else {
                    unreachable!("external-return edge without call site")
                };
                self.sem.bind_external(ret.as_ref(), src_post)
            }
        }
    }

    fn join(&self, a: &OctState, b: &OctState) -> OctState {
        join_st(a, b)
    }

    fn widen(&self, a: &OctState, b: &OctState) -> OctState {
        a.union_with(b, |_, x, y| x.widen(y))
    }

    fn widen_with(&self, a: &OctState, b: &OctState, thresholds: &Thresholds) -> OctState {
        a.union_with(b, |_, x, y| x.widen_with(y, thresholds))
    }

    fn narrow(&self, a: &OctState, b: &OctState) -> OctState {
        a.union_with(b, |_, x, y| x.narrow(y))
    }
}

/// Binds actuals (evaluated in `arg_view`) to formals, updating `st`.
fn bind_args_from(
    sem: &OctSemantics<'_>,
    callee: ProcId,
    args: &[Expr],
    arg_view: &OctState,
    st: &OctState,
) -> OctState {
    let mut out = st.clone();
    for (i, &p) in sem.program.procs[callee].params.iter().enumerate() {
        match args.get(i) {
            Some(a) => {
                // Linear args relate param and actual exactly when a shared
                // pack exists; otherwise fall back to the projected interval
                // evaluated in the pre-call view.
                let lin = linearize(a);
                match lin {
                    Lin::VarPlus(_, _) | Lin::Const(_) => {
                        // assign_var reads only the target packs and, for
                        // projections, the source's packs — both from the
                        // pre-call view joined state; safe because callee
                        // effects cannot touch the actual's packs before the
                        // call executes. Evaluate via arg_view for the
                        // interval fallback.
                        out = assign_var_with_view(sem, &out, p, a, arg_view);
                    }
                    _ => {
                        let itv = sem.eval_itv(arg_view, a);
                        out = assign_itv(sem, &out, p, &itv);
                    }
                }
            }
            None => out = sem.havoc_var(&out, p),
        }
    }
    out
}

/// `x := e` where interval fallbacks evaluate in `view` instead of `st`.
fn assign_var_with_view(
    sem: &OctSemantics<'_>,
    st: &OctState,
    x: VarId,
    e: &Expr,
    view: &OctState,
) -> OctState {
    let lin = linearize(e);
    let mut out = st.clone();
    for &pid in sem.packs.packs_of(x) {
        let Some(oct) = st.get(&pid) else { continue };
        let pack = sem.packs.pack(pid);
        let ix = pack.index_of(x).expect("pack contains x");
        let new = match lin {
            Lin::Const(c) => oct.assign_interval(ix, &Interval::constant(c)),
            Lin::VarPlus(y, c) => match pack.index_of(y) {
                Some(iy) => oct.assign_var_plus(ix, iy, c),
                None => oct.assign_interval(ix, &sem.eval_itv(view, e)),
            },
            _ => oct.assign_interval(ix, &sem.eval_itv(view, e)),
        };
        out = out.insert(pid, new);
    }
    out
}

/// `x := [lo,hi]` on every pack containing `x`.
fn assign_itv(sem: &OctSemantics<'_>, st: &OctState, x: VarId, itv: &Interval) -> OctState {
    let mut out = st.clone();
    for &pid in sem.packs.packs_of(x) {
        let Some(oct) = st.get(&pid) else { continue };
        let pack = sem.packs.pack(pid);
        let ix = pack.index_of(x).expect("pack contains x");
        out = out.insert(pid, oct.assign_interval(ix, itv));
    }
    out
}

struct OctSparseSpec<'p> {
    sem: &'p OctSemantics<'p>,
    odu: &'p OctDefUse,
}

impl SparseSpec for OctSparseSpec<'_> {
    type L = PackId;
    type V = Octagon;

    fn loc_of(&self, id: u32) -> PackId {
        PackId(id)
    }

    fn initial(&self) -> PMap<PackId, Octagon> {
        self.sem.initial()
    }

    fn transfer(
        &self,
        cp: Cp,
        pre: &PMap<PackId, Octagon>,
        ret_in: &PMap<PackId, Octagon>,
    ) -> PMap<PackId, Octagon> {
        let program = self.sem.program;
        let input = pre.union_with(ret_in, |_, a, b| a.join(b));
        let post = match program.cmd(cp) {
            Cmd::Call { ret, args, .. } => {
                let mut out = input.clone();
                let mut any_internal = false;
                for &t in self.sem.pre.call_targets(cp) {
                    let callee = &program.procs[t];
                    if callee.is_external {
                        continue;
                    }
                    any_internal = true;
                    // Arguments read the pre-call state; effects land on the
                    // joined view.
                    out = bind_args_from(self.sem, t, args, pre, &out);
                    out = self.sem.bind_return(t, ret.as_ref(), &out);
                }
                let has_external = !any_internal
                    || self
                        .sem
                        .pre
                        .call_targets(cp)
                        .iter()
                        .any(|&t| program.procs[t].is_external);
                if has_external {
                    out = self.sem.bind_external(ret.as_ref(), &out);
                }
                out
            }
            _ => self.sem.transfer(cp, &input),
        };
        // Restrict to D̂(cp).
        let mut out = PMap::new();
        for &id in self.odu.defs(cp) {
            let pid = PackId(id);
            if let Some(oct) = post.get(&pid) {
                if !matches!(oct.close(), Octagon::Bot) {
                    out = out.insert(pid, oct.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sga_cfront::parse;

    fn var(program: &Program, name: &str) -> VarId {
        program
            .vars
            .iter_enumerated()
            .find(|(_, v)| v.name == name)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    #[test]
    fn packs_group_related_vars() {
        let p = parse("int main() { int a = 1; int b = a + 2; int c = 9; return b; }").unwrap();
        let packs = build_packs(&p);
        let (a, b, c) = (var(&p, "a"), var(&p, "b"), var(&p, "c"));
        let shared = packs
            .packs_of(a)
            .iter()
            .any(|pid| packs.pack(*pid).contains(b));
        assert!(shared, "a and b must share a pack");
        // c is only related to itself (the constant 9 assignment).
        assert!(packs.singleton_id(c).is_some());
        assert!(packs.average_size() >= 1.0);
    }

    #[test]
    fn pack_size_capped() {
        // A chain of 30 related variables must not form one mega-pack.
        let mut src = String::from("int main() { int x0 = 0;");
        for i in 1..30 {
            src.push_str(&format!("int x{i} = x{} + 1;", i - 1));
        }
        src.push_str("return x29; }");
        let p = parse(&src).unwrap();
        let packs = build_packs(&p);
        for (_, pack) in packs.iter() {
            assert!(pack.len() <= PACK_SIZE_LIMIT, "pack too big: {pack:?}");
        }
    }

    #[test]
    fn relational_invariant_beats_intervals() {
        // y = x + 1 with unknown x: intervals know nothing about y − x, the
        // octagon knows y − x = 1.
        let p = parse(
            "int main(int x) {
                int y = x + 1;
                int d = y - x;
                return d;
             }",
        )
        .unwrap();
        for engine in [Engine::Vanilla, Engine::Base, Engine::Sparse] {
            let r = analyze(&p, engine);
            let (x, y) = (var(&p, "x"), var(&p, "y"));
            let y_def = p
                .all_points()
                .find(|cp| matches!(p.cmd(*cp), Cmd::Assign(LVal::Var(v), _) if *v == y))
                .unwrap();
            assert_eq!(
                r.diff_bound(y_def, y, x),
                Some(1),
                "{engine:?}: y - x ≤ 1 must be known"
            );
            assert_eq!(r.diff_bound(y_def, x, y), Some(-1), "{engine:?}");
            // And d's projection is exactly [1,1].
            let d = var(&p, "d");
            let d_def = p
                .all_points()
                .find(|cp| matches!(p.cmd(*cp), Cmd::Assign(LVal::Var(v), _) if *v == d))
                .unwrap();
            assert_eq!(r.itv_of(d_def, d), Interval::constant(1), "{engine:?}");
        }
    }

    #[test]
    fn loop_invariant_with_widening() {
        let p = parse(
            "int main() {
                int i = 0; int j = 0;
                while (i < 100) { i = i + 1; j = j + 1; }
                return j;
             }",
        )
        .unwrap();
        for engine in [Engine::Base, Engine::Sparse] {
            let r = analyze(&p, engine);
            let (i, j) = (var(&p, "i"), var(&p, "j"));
            // After the loop, i = 100 exactly (narrowing recovers the bound).
            let exit_assume = p
                .all_points()
                .find(|cp| match p.cmd(*cp) {
                    Cmd::Assume(c) => c.op == RelOp::Ge,
                    _ => false,
                })
                .unwrap();
            let iv = r.itv_of(exit_assume, i);
            assert_eq!(iv, Interval::constant(100), "{engine:?}: i at exit = {iv}");
            // The relational invariant i = j survives the loop.
            assert_eq!(r.diff_bound(exit_assume, i, j), Some(0), "{engine:?}");
        }
    }

    #[test]
    fn interprocedural_relation_through_params() {
        let p = parse(
            "int inc(int a) { return a + 1; }
             int main(int x) { int y = inc(x); int d = y - x; return d; }",
        )
        .unwrap();
        for engine in [Engine::Base, Engine::Sparse] {
            let r = analyze(&p, engine);
            let d = var(&p, "d");
            let d_def = p
                .all_points()
                .find(|cp| matches!(p.cmd(*cp), Cmd::Assign(LVal::Var(v), _) if *v == d))
                .unwrap();
            let dv = r.itv_of(d_def, d);
            // The relation a = x + 0 → ret = x + 1 → y = x + 1 needs the
            // call-boundary packs; at minimum d must be bounded.
            assert!(
                Interval::constant(1).le(&dv),
                "{engine:?}: d should include 1, got {dv}"
            );
        }
    }

    #[test]
    fn pointer_store_havocs_target() {
        let p = parse(
            "int main() {
                int a = 5; int *p = &a;
                *p = 100;
                int b = a;
                return b;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let b = var(&p, "b");
        let b_def = p
            .all_points()
            .find(|cp| matches!(p.cmd(*cp), Cmd::Assign(LVal::Var(v), _) if *v == b))
            .unwrap();
        // a was havocked by the store, so b is unconstrained — but crucially
        // NOT still [5,5].
        let bv = r.itv_of(b_def, b);
        assert_ne!(bv, Interval::constant(5), "store through p must havoc a");
    }

    #[test]
    fn sparse_matches_base_on_defs() {
        let p = parse(
            "int main(int n) {
                int i = 0; int s = 0;
                while (i < n) { s = s + 1; i = i + 1; }
                int d = s - i;
                return d;
             }",
        )
        .unwrap();
        let base = analyze(&p, Engine::Base);
        let sparse = analyze(&p, Engine::Sparse);
        let d = var(&p, "d");
        let d_def = p
            .all_points()
            .find(|cp| matches!(p.cmd(*cp), Cmd::Assign(LVal::Var(v), _) if *v == d))
            .unwrap();
        assert_eq!(base.itv_of(d_def, d), sparse.itv_of(d_def, d));
    }
}
