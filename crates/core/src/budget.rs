//! Analysis budgets with *sound* degradation.
//!
//! At batch scale (§5–6: global analysis of million-LoC programs) one
//! pathologically slow translation unit must not stall the whole run. A
//! [`Budget`] bounds a fixpoint computation by step count and/or wall-clock
//! deadline. When a solver exhausts its budget it does **not** abort and it
//! does **not** return the half-iterated state: it finishes the ascending
//! phase in *degraded mode* — every dependency-cycle head widens
//! immediately with the plain (threshold-free, delay-free) widening
//! operator, so all still-moving bounds escape to ±∞ in one step — and the
//! descending (narrowing) phase is skipped. The result is a genuine
//! post-fixpoint of the abstract semantics, i.e. a sound over-approximation
//! of the unbounded analysis; it is merely less precise, and the run is
//! flagged `degraded` so reports and gates can see it.
//!
//! Step budgets (`max_steps`) are deterministic: the same program and
//! budget degrade at exactly the same solver step on every machine and for
//! every `--jobs` value. Deadline budgets (`timeout_ms`) are inherently
//! machine-dependent and should be left off when reproducibility matters
//! (they are still sound).

use std::time::{Duration, Instant};

/// A bound on how much work one fixpoint computation may do.
///
/// The default budget is unbounded — both limits off.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Budget {
    /// Maximum ascending-phase node evaluations before degradation.
    pub max_steps: Option<u64>,
    /// Wall-clock limit for the ascending phase, in milliseconds.
    pub timeout_ms: Option<u64>,
}

impl Budget {
    /// No limits: the solver runs to its exact (narrowed) fixpoint.
    pub const fn unbounded() -> Budget {
        Budget {
            max_steps: None,
            timeout_ms: None,
        }
    }

    /// A pure step budget (deterministic).
    pub const fn with_max_steps(max_steps: u64) -> Budget {
        Budget {
            max_steps: Some(max_steps),
            timeout_ms: None,
        }
    }

    /// A pure wall-clock budget (machine-dependent).
    pub const fn with_timeout_ms(timeout_ms: u64) -> Budget {
        Budget {
            max_steps: None,
            timeout_ms: Some(timeout_ms),
        }
    }

    /// Whether neither limit is set.
    pub fn is_unbounded(&self) -> bool {
        self.max_steps.is_none() && self.timeout_ms.is_none()
    }

    /// A stable textual rendering for cache keys: depends only on the
    /// configured limits, never on wall-clock state.
    pub fn cache_tag(&self) -> String {
        format!(
            "steps={:?},timeout_ms={:?}",
            self.max_steps, self.timeout_ms
        )
    }

    /// Starts metering against this budget (resolves the deadline now).
    pub fn start(&self) -> BudgetMeter {
        BudgetMeter {
            max_steps: self.max_steps.unwrap_or(u64::MAX),
            deadline: self
                .timeout_ms
                .map(|ms| Instant::now() + Duration::from_millis(ms)),
            steps: 0,
            exhausted: false,
        }
    }
}

/// Hard per-worker resource limits, enforced from *outside* the analysis.
///
/// A [`Budget`] is cooperative: the solver meters its own steps and
/// degrades soundly when it runs out. `WorkerLimits` is the uncooperative
/// complement for process-isolated execution — an address-space cap
/// (`RLIMIT_AS`) and a wall-clock deadline the supervisor enforces with
/// SIGKILL. Exceeding a budget yields a `degraded` unit; exceeding a worker
/// limit kills the worker and yields a `crashed` unit. The two are kept
/// distinct on purpose: degradation is a sound analysis result, a kill is
/// not a result at all.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WorkerLimits {
    /// Address-space cap per worker process, in MiB (`RLIMIT_AS`).
    pub mem_mb: Option<u64>,
    /// Wall-clock limit per worker attempt, in milliseconds. The parent
    /// SIGKILLs a worker that outlives it.
    pub timeout_ms: Option<u64>,
}

impl WorkerLimits {
    /// No hard limits (the default): workers run unconfined.
    pub const fn unbounded() -> WorkerLimits {
        WorkerLimits {
            mem_mb: None,
            timeout_ms: None,
        }
    }

    /// Whether neither limit is set.
    pub fn is_unbounded(&self) -> bool {
        self.mem_mb.is_none() && self.timeout_ms.is_none()
    }

    /// The `RLIMIT_CPU` backstop (whole seconds) derived from the wall-clock
    /// limit: a worker the supervisor somehow fails to kill still dies on
    /// its own once it has *burned* this much CPU. One second of headroom
    /// past the rounded-up wall limit keeps the backstop from firing before
    /// the supervisor on a busy worker.
    pub fn cpu_limit_secs(&self) -> Option<u64> {
        self.timeout_ms.map(|ms| ms.div_ceil(1000) + 1)
    }
}

/// How often the (comparatively expensive) deadline clock is consulted.
const DEADLINE_CHECK_PERIOD: u64 = 128;

/// A running meter over a [`Budget`]. One meter covers one solve.
#[derive(Clone, Debug)]
pub struct BudgetMeter {
    max_steps: u64,
    deadline: Option<Instant>,
    steps: u64,
    exhausted: bool,
}

impl BudgetMeter {
    /// Counts one solver step. Returns `true` from the exhausting step on
    /// (exhaustion is sticky — once over budget, always over budget).
    pub fn step(&mut self) -> bool {
        if self.exhausted {
            return true;
        }
        self.steps += 1;
        if self.steps > self.max_steps {
            self.exhausted = true;
        } else if let Some(deadline) = self.deadline {
            if self.steps.is_multiple_of(DEADLINE_CHECK_PERIOD) && Instant::now() >= deadline {
                self.exhausted = true;
            }
        }
        self.exhausted
    }

    /// Steps counted so far.
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Whether the budget has been exceeded.
    pub fn is_exhausted(&self) -> bool {
        self.exhausted
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unbounded_never_exhausts() {
        let mut m = Budget::unbounded().start();
        for _ in 0..10_000 {
            assert!(!m.step());
        }
        assert_eq!(m.steps(), 10_000);
    }

    #[test]
    fn step_budget_trips_exactly_past_the_limit() {
        let mut m = Budget::with_max_steps(3).start();
        assert!(!m.step());
        assert!(!m.step());
        assert!(!m.step());
        assert!(m.step(), "step 4 exceeds max_steps=3");
        assert!(m.step(), "exhaustion is sticky");
    }

    #[test]
    fn zero_timeout_trips_at_first_check() {
        let mut m = Budget::with_timeout_ms(0).start();
        let mut tripped = false;
        for _ in 0..(DEADLINE_CHECK_PERIOD * 2) {
            if m.step() {
                tripped = true;
                break;
            }
        }
        assert!(tripped, "an already-expired deadline must trip");
    }

    #[test]
    fn cache_tag_is_stable_and_distinguishes() {
        assert_eq!(
            Budget::unbounded().cache_tag(),
            Budget::default().cache_tag()
        );
        assert_ne!(
            Budget::with_max_steps(10).cache_tag(),
            Budget::with_max_steps(11).cache_tag()
        );
        assert_ne!(
            Budget::with_max_steps(10).cache_tag(),
            Budget::with_timeout_ms(10).cache_tag()
        );
    }
}
