//! Safe approximations `D̂(c)` / `Û(c)` (§3.2, Definition 5) and the
//! per-procedure access summaries used by the interprocedural scheme of §5.
//!
//! Two layers of sets per control point:
//!
//! * **real** defs/uses — what the command's transfer function itself
//!   defines and uses, derived from the semantic definitions of §3.2 with
//!   the pre-analysis `T̂` supplying points-to facts. Weak-update targets are
//!   included in the use set (the spurious-definition condition (2) of
//!   Definition 5); strong-update targets are not (Example 4's discussion).
//! * **full** defs/uses — the real sets extended with *relay* roles: a call
//!   is treated "as a definition (resp. use) of all abstract locations
//!   defined (resp. used) by the callee", and a procedure entry/exit as
//!   relays of the locations flowing in/out (§5). The bypass optimization
//!   later contracts chains through pure relays, using the real sets to
//!   decide what is contractible.

use crate::preanalysis::PreAnalysis;
use crate::semantics::{lval_targets, lval_used, used_locs};
use sga_domains::{AbsLoc, State};
use sga_ir::{Cmd, Cp, Expr, ProcId, Program, VarKind};
use sga_utils::{FxHashMap, Idx, IndexVec};
use std::collections::BTreeSet;

/// Dense interning of abstract locations (for bitsets, BDDs, and the
/// dependency generator).
#[derive(Debug, Default)]
pub struct LocTable {
    locs: Vec<AbsLoc>,
    ids: FxHashMap<AbsLoc, u32>,
}

impl LocTable {
    /// Interns a location.
    pub fn intern(&mut self, l: AbsLoc) -> u32 {
        if let Some(&id) = self.ids.get(&l) {
            return id;
        }
        let id = self.locs.len() as u32;
        self.locs.push(l);
        self.ids.insert(l, id);
        id
    }

    /// The location for an id.
    pub fn loc(&self, id: u32) -> AbsLoc {
        self.locs[id as usize]
    }

    /// Id of an already-interned location.
    pub fn id(&self, l: &AbsLoc) -> Option<u32> {
        self.ids.get(l).copied()
    }

    /// Number of interned locations — Table 1's `AbsLocs` column.
    pub fn len(&self) -> usize {
        self.locs.len()
    }

    /// Whether no location was interned.
    pub fn is_empty(&self) -> bool {
        self.locs.is_empty()
    }
}

/// Def/use sets for one control point (sorted, deduplicated).
#[derive(Clone, Debug, Default)]
pub struct CpSets {
    /// Semantic (command-level) definitions.
    pub real_defs: Vec<AbsLoc>,
    /// Semantic uses.
    pub real_uses: Vec<AbsLoc>,
    /// `D̂(c)`: real defs plus relayed locations.
    pub defs: Vec<AbsLoc>,
    /// `Û(c)`: real uses plus relayed locations.
    pub uses: Vec<AbsLoc>,
}

/// The complete def/use computation result.
#[derive(Debug)]
pub struct DefUse {
    /// Per-control-point sets.
    pub sets: FxHashMap<Cp, CpSets>,
    /// Exported (caller-visible) defs of each procedure, transitively.
    pub summary_defs: IndexVec<ProcId, Vec<AbsLoc>>,
    /// Exported uses of each procedure, transitively.
    pub summary_uses: IndexVec<ProcId, Vec<AbsLoc>>,
    /// All locations seen, densely numbered.
    pub locs: LocTable,
}

impl DefUse {
    /// `D̂(c)`.
    pub fn defs(&self, cp: Cp) -> &[AbsLoc] {
        self.sets.get(&cp).map_or(&[], |s| &s.defs)
    }

    /// `Û(c)`.
    pub fn uses(&self, cp: Cp) -> &[AbsLoc] {
        self.sets.get(&cp).map_or(&[], |s| &s.uses)
    }

    /// Whether `l` is a *real* (non-relay) def or use at `cp` — the bypass
    /// optimization's contractibility test.
    pub fn is_real(&self, cp: Cp, l: &AbsLoc) -> bool {
        self.sets.get(&cp).is_some_and(|s| {
            s.real_defs.binary_search(l).is_ok() || s.real_uses.binary_search(l).is_ok()
        })
    }

    /// Average `|D̂(c)|` over real command points — Table 2's `D̂(c)` column.
    pub fn avg_def_size(&self) -> f64 {
        avg(self.sets.values().map(|s| s.defs.len()))
    }

    /// Average `|Û(c)|` — Table 2's `Û(c)` column.
    pub fn avg_use_size(&self) -> f64 {
        avg(self.sets.values().map(|s| s.uses.len()))
    }
}

fn avg(sizes: impl Iterator<Item = usize>) -> f64 {
    let (mut n, mut total) = (0usize, 0usize);
    for s in sizes {
        n += 1;
        total += s;
    }
    if n == 0 {
        0.0
    } else {
        total as f64 / n as f64
    }
}

/// Whether a location is invisible outside its owning frame (never exported
/// in summaries; parameter and return flow is linked explicitly instead).
pub fn is_frame_private(program: &Program, l: &AbsLoc) -> bool {
    match l {
        AbsLoc::Var(v) | AbsLoc::Field(v, _) => {
            let info = &program.vars[*v];
            info.kind != VarKind::Global && !info.address_taken
        }
        _ => false,
    }
}

/// Computes real and full def/use sets plus procedure summaries.
pub fn compute(program: &Program, pre: &PreAnalysis) -> DefUse {
    compute_with_state(program, pre, &pre.state)
}

/// Like [`compute`], but deriving D̂/Û from an explicitly supplied
/// pre-analysis state — used by the semi-sparse instance, which coarsens the
/// points-to information of non-top-level variables (§3.2).
///
/// This is the sequential driver over the staged per-procedure passes —
/// [`real_sets_for_proc`], [`summarize_scc`], [`relay_sets_for_proc`],
/// [`finish`] — which the parallel pipeline schedules itself (pass 1 and
/// pass 3 are independent per procedure; pass 2 is bottom-up over call-graph
/// SCCs).
pub fn compute_with_state(program: &Program, pre: &PreAnalysis, t: &State) -> DefUse {
    // Pass 1: real sets per node.
    let mut sets: FxHashMap<Cp, CpSets> = FxHashMap::default();
    for pid in program.procs.indices() {
        sets.extend(real_sets_for_proc(program, pre, t, pid));
    }

    // Pass 2: transitive access summaries, bottom-up over call-graph SCCs.
    let nprocs = program.procs.len();
    let mut summary_defs: IndexVec<ProcId, Vec<AbsLoc>> = IndexVec::from_elem_n(Vec::new(), nprocs);
    let mut summary_uses: IndexVec<ProcId, Vec<AbsLoc>> = IndexVec::from_elem_n(Vec::new(), nprocs);
    for scc in pre.callgraph.bottom_up_sccs() {
        let (exported_defs, exported_uses) =
            summarize_scc(program, pre, &sets, scc, &summary_defs, &summary_uses);
        for &praw in scc {
            let pid = ProcId::new(praw);
            summary_defs[pid] = exported_defs.clone();
            summary_uses[pid] = exported_uses.clone();
        }
    }

    // Pass 3: full sets with relay roles, then deterministic interning.
    let parts: Vec<ProcFullSets> = program
        .procs
        .indices()
        .map(|pid| relay_sets_for_proc(program, pre, pid, &sets, &summary_defs, &summary_uses))
        .collect();
    finish(sets, summary_defs, summary_uses, parts)
}

/// Full `D̂`/`Û` sets of one procedure's control points, in node order
/// (pass 3's per-procedure output, not yet interned).
pub type ProcFullSets = Vec<(Cp, Vec<AbsLoc>, Vec<AbsLoc>)>;

/// Pass 1 for one procedure: the real (semantic) def/use sets of each of
/// its control points. Independent across procedures.
pub fn real_sets_for_proc(
    program: &Program,
    pre: &PreAnalysis,
    t: &State,
    pid: ProcId,
) -> Vec<(Cp, CpSets)> {
    let proc = &program.procs[pid];
    if proc.is_external {
        return Vec::new();
    }
    proc.nodes
        .iter_enumerated()
        .map(|(nid, node)| {
            let cp = Cp::new(pid, nid);
            let (real_defs, real_uses) = real_def_use(program, pre, t, cp, &node.cmd);
            (
                cp,
                CpSets {
                    real_defs,
                    real_uses,
                    defs: Vec::new(),
                    uses: Vec::new(),
                },
            )
        })
        .collect()
}

/// Pass 2 for one call-graph SCC: the exported (caller-visible) accesses of
/// its procedures, given the summaries of everything below it. SCCs at the
/// same bottom-up level are independent.
pub fn summarize_scc(
    program: &Program,
    pre: &PreAnalysis,
    sets: &FxHashMap<Cp, CpSets>,
    scc: &[usize],
    summary_defs: &IndexVec<ProcId, Vec<AbsLoc>>,
    summary_uses: &IndexVec<ProcId, Vec<AbsLoc>>,
) -> (Vec<AbsLoc>, Vec<AbsLoc>) {
    let mut defs: BTreeSet<AbsLoc> = BTreeSet::new();
    let mut uses: BTreeSet<AbsLoc> = BTreeSet::new();
    for &praw in scc {
        let pid = ProcId::new(praw);
        let proc = &program.procs[pid];
        if proc.is_external {
            continue;
        }
        for nid in proc.nodes.indices() {
            let cp = Cp::new(pid, nid);
            let s = &sets[&cp];
            defs.extend(s.real_defs.iter().copied());
            uses.extend(s.real_uses.iter().copied());
            for &t_pid in pre.call_targets(cp) {
                if scc.contains(&t_pid.index()) {
                    continue; // same-SCC summaries converge to the union
                }
                defs.extend(summary_defs[t_pid].iter().copied());
                uses.extend(summary_uses[t_pid].iter().copied());
            }
        }
    }
    let exported_defs: Vec<AbsLoc> = defs
        .iter()
        .copied()
        .filter(|l| !is_frame_private(program, l))
        .collect();
    let exported_uses: Vec<AbsLoc> = uses
        .iter()
        .copied()
        .filter(|l| !is_frame_private(program, l))
        .collect();
    (exported_defs, exported_uses)
}

/// Pass 3 for one procedure: the full `D̂`/`Û` sets (real sets extended with
/// relay roles), given everyone's summaries. Independent across procedures;
/// the outputs must be handed to [`finish`] in procedure order so location
/// interning stays deterministic.
pub fn relay_sets_for_proc(
    program: &Program,
    pre: &PreAnalysis,
    pid: ProcId,
    sets: &FxHashMap<Cp, CpSets>,
    summary_defs: &IndexVec<ProcId, Vec<AbsLoc>>,
    summary_uses: &IndexVec<ProcId, Vec<AbsLoc>>,
) -> ProcFullSets {
    let proc = &program.procs[pid];
    if proc.is_external {
        return Vec::new();
    }
    // Locations flowing through this procedure's entry: everything its
    // body (transitively) uses, plus its parameters; through its exit:
    // everything it defines, plus its return variable.
    let mut flow_in: BTreeSet<AbsLoc> = summary_uses[pid].iter().copied().collect();
    for &p in &proc.params {
        flow_in.insert(AbsLoc::Var(p));
    }
    let mut flow_out: BTreeSet<AbsLoc> = summary_defs[pid].iter().copied().collect();
    flow_out.insert(AbsLoc::Var(proc.ret_var));

    let mut out: ProcFullSets = Vec::with_capacity(proc.nodes.len());
    for (nid, node) in proc.nodes.iter_enumerated() {
        let cp = Cp::new(pid, nid);
        let mut defs: BTreeSet<AbsLoc> = BTreeSet::new();
        let mut uses: BTreeSet<AbsLoc> = BTreeSet::new();
        {
            let s = &sets[&cp];
            defs.extend(s.real_defs.iter().copied());
            uses.extend(s.real_uses.iter().copied());
        }
        if let Cmd::Call { .. } = &node.cmd {
            for &t_pid in pre.call_targets(cp) {
                let callee = &program.procs[t_pid];
                if callee.is_external {
                    continue;
                }
                // The call receives callee-defined values back and
                // relays them on; spurious (may-)defs go into Û per
                // Definition 5(2). Callee-*used* locations are NOT
                // relayed through the call: the dependency generator
                // routes their reaching definitions straight to the
                // callee entry (pre-call values must not mix with
                // returned ones), and keeps them in Û only so the
                // reaching-def pass visits this node.
                defs.extend(summary_defs[t_pid].iter().copied());
                uses.extend(summary_defs[t_pid].iter().copied());
                uses.extend(summary_uses[t_pid].iter().copied());
                for &p in &callee.params {
                    defs.insert(AbsLoc::Var(p));
                }
                uses.insert(AbsLoc::Var(callee.ret_var));
            }
        }
        if nid == proc.entry {
            defs.extend(flow_in.iter().copied());
            uses.extend(flow_in.iter().copied());
        }
        if nid == proc.exit {
            defs.extend(flow_out.iter().copied());
            uses.extend(flow_out.iter().copied());
        }
        out.push((cp, defs.into_iter().collect(), uses.into_iter().collect()));
    }
    out
}

/// Merges the pass-3 outputs into the final [`DefUse`], interning locations
/// in the order the parts are given (pass the parts in procedure order for
/// run-to-run determinism).
pub fn finish(
    mut sets: FxHashMap<Cp, CpSets>,
    summary_defs: IndexVec<ProcId, Vec<AbsLoc>>,
    summary_uses: IndexVec<ProcId, Vec<AbsLoc>>,
    parts: Vec<ProcFullSets>,
) -> DefUse {
    let mut locs = LocTable::default();
    for part in parts {
        for (cp, defs, uses) in part {
            let s = sets.get_mut(&cp).expect("pass 1 visited every node");
            s.defs = defs;
            s.uses = uses;
            for l in s.defs.iter().chain(&s.uses) {
                locs.intern(*l);
            }
        }
    }
    DefUse {
        sets,
        summary_defs,
        summary_uses,
        locs,
    }
}

fn real_def_use(
    program: &Program,
    pre: &PreAnalysis,
    t: &State,
    cp: Cp,
    cmd: &Cmd,
) -> (Vec<AbsLoc>, Vec<AbsLoc>) {
    let mut defs: Vec<AbsLoc> = Vec::new();
    let mut uses: Vec<AbsLoc> = Vec::new();
    let assign_sets = |lv: &sga_ir::LVal, defs: &mut Vec<AbsLoc>, uses: &mut Vec<AbsLoc>| {
        let (targets, strong) = lval_targets(program, lv, t);
        defs.extend(targets.iter().copied());
        lval_used(lv, uses);
        if !strong {
            // Weak updates read their targets (Example 1's discussion) and,
            // equally, spurious defs must be uses (Definition 5(2)).
            uses.extend(targets.iter().copied());
        }
    };
    match cmd {
        Cmd::Skip => {}
        Cmd::Assign(lv, e) => {
            used_locs(program, e, t, &mut uses);
            assign_sets(lv, &mut defs, &mut uses);
        }
        Cmd::Alloc(lv, size) => {
            used_locs(program, size, t, &mut uses);
            assign_sets(lv, &mut defs, &mut uses);
        }
        Cmd::Assume(cond) => {
            used_locs(program, &cond.lhs, t, &mut uses);
            used_locs(program, &cond.rhs, t, &mut uses);
            for side in [&cond.lhs, &cond.rhs] {
                match side {
                    Expr::Var(x) => defs.push(AbsLoc::Var(*x)),
                    Expr::Field(x, f) => defs.push(AbsLoc::Field(*x, *f)),
                    _ => {}
                }
            }
            // Refinement meets with the current value: defs are also uses.
            uses.extend(defs.iter().copied());
        }
        Cmd::Return(e) => {
            if let Some(e) = e {
                used_locs(program, e, t, &mut uses);
            }
            defs.push(AbsLoc::Var(program.procs[cp.proc].ret_var));
        }
        Cmd::Call { ret, callee, args } => {
            for a in args {
                used_locs(program, a, t, &mut uses);
            }
            if let sga_ir::Callee::Indirect(e) = callee {
                used_locs(program, e, t, &mut uses);
            }
            // Parameter binding: the call is the real producer of the
            // callee's formals, and the real consumer of its return value.
            for &t_pid in pre.call_targets(cp) {
                let callee = &program.procs[t_pid];
                if callee.is_external {
                    continue;
                }
                for &p in &callee.params {
                    defs.push(AbsLoc::Var(p));
                }
                uses.push(AbsLoc::Var(callee.ret_var));
            }
            if let Some(lv) = ret {
                assign_sets(lv, &mut defs, &mut uses);
            }
        }
    }
    defs.sort_unstable();
    defs.dedup();
    uses.sort_unstable();
    uses.dedup();
    (defs, uses)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preanalysis;
    use sga_cfront::parse;
    use sga_ir::VarId;

    fn setup(src: &str) -> (Program, PreAnalysis) {
        let p = parse(src).unwrap();
        let pre = preanalysis::run(&p);
        (p, pre)
    }

    fn var(program: &Program, name: &str) -> VarId {
        program
            .vars
            .iter_enumerated()
            .find(|(_, v)| v.name == name)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    fn find_cp(program: &Program, pred: impl Fn(&Cmd) -> bool) -> Cp {
        program
            .all_points()
            .find(|cp| pred(program.cmd(*cp)))
            .expect("no matching command")
    }

    #[test]
    fn assign_defines_lhs_uses_rhs() {
        let (p, pre) = setup("int x; int y; int main() { x = y + 1; return 0; }");
        let du = compute(&p, &pre);
        // Skip the zero-init prelude assignments; pick the x = y + 1 node.
        let cp = find_cp(&p, |c| {
            matches!(
                c,
                Cmd::Assign(sga_ir::LVal::Var(_), sga_ir::Expr::Binop(..))
            )
        });
        let (x, y) = (var(&p, "x"), var(&p, "y"));
        assert_eq!(du.defs(cp), &[AbsLoc::Var(x)]);
        assert_eq!(du.uses(cp), &[AbsLoc::Var(y)]);
    }

    #[test]
    fn weak_store_targets_in_uses() {
        // p may point to {x, y}: *p := 0 defines both weakly, so both are
        // also uses (paper Example 1).
        let (p, pre) = setup(
            "int x; int y; int *p;
             int main(int c) { if (c) p = &x; else p = &y; *p = 0; return 0; }",
        );
        let du = compute(&p, &pre);
        let cp = find_cp(&p, |c| matches!(c, Cmd::Assign(sga_ir::LVal::Deref(_), _)));
        let (x, y, pv) = (var(&p, "x"), var(&p, "y"), var(&p, "p"));
        let defs = du.defs(cp);
        assert!(defs.contains(&AbsLoc::Var(x)) && defs.contains(&AbsLoc::Var(y)));
        let uses = du.uses(cp);
        assert!(uses.contains(&AbsLoc::Var(pv)), "pointer itself is used");
        assert!(
            uses.contains(&AbsLoc::Var(x)) && uses.contains(&AbsLoc::Var(y)),
            "weak-update targets must be in Û (Def 5(2)): {uses:?}"
        );
    }

    #[test]
    fn strong_store_targets_not_in_uses() {
        // p points only to x: strong update; x must NOT be in Û (Example 4).
        let (p, pre) = setup("int x; int *p; int main() { p = &x; *p = 1; return 0; }");
        let du = compute(&p, &pre);
        let cp = find_cp(&p, |c| matches!(c, Cmd::Assign(sga_ir::LVal::Deref(_), _)));
        let x = var(&p, "x");
        assert!(du.defs(cp).contains(&AbsLoc::Var(x)));
        assert!(
            !du.uses(cp).contains(&AbsLoc::Var(x)),
            "strong update target must not be a use: {:?}",
            du.uses(cp)
        );
    }

    #[test]
    fn call_relays_callee_accesses() {
        let (p, pre) = setup(
            "int g; int h;
             int f() { g = g + 1; return g; }
             int main() { int r = f(); h = g; return r; }",
        );
        let du = compute(&p, &pre);
        let g = var(&p, "g");
        let f = p.proc_by_name("f").unwrap();
        assert!(du.summary_defs[f].contains(&AbsLoc::Var(g)));
        assert!(du.summary_uses[f].contains(&AbsLoc::Var(g)));
        let call_cp = find_cp(&p, |c| matches!(c, Cmd::Call { .. }));
        assert!(du.defs(call_cp).contains(&AbsLoc::Var(g)), "call relays g");
        assert!(du.uses(call_cp).contains(&AbsLoc::Var(g)));
        // But g is NOT a real def/use of the call command itself.
        assert!(!du.is_real(call_cp, &AbsLoc::Var(g)));
        // The callee's param-free return var is really used at the call.
        let retv = p.procs[f].ret_var;
        assert!(du.is_real(call_cp, &AbsLoc::Var(retv)));
    }

    #[test]
    fn summaries_are_transitive_and_private_filtered() {
        let (p, pre) = setup(
            "int g;
             int h() { g = 1; return 0; }
             int f() { int local = 2; return h() + local; }
             int main() { return f(); }",
        );
        let du = compute(&p, &pre);
        let f = p.proc_by_name("f").unwrap();
        let g = var(&p, "g");
        assert!(
            du.summary_defs[f].contains(&AbsLoc::Var(g)),
            "transitive through h"
        );
        let local = var(&p, "local");
        assert!(
            !du.summary_defs[f].contains(&AbsLoc::Var(local)),
            "private locals are not exported"
        );
    }

    #[test]
    fn recursive_scc_shares_summary() {
        let (p, pre) = setup(
            "int a; int b;
             int odd(int n);
             int even(int n) { if (n == 0) { a = 1; return 1; } return odd(n - 1); }
             int odd(int n) { if (n == 0) { b = 1; return 0; } return even(n - 1); }
             int main() { return even(10); }",
        );
        let du = compute(&p, &pre);
        let even = p.proc_by_name("even").unwrap();
        let odd = p.proc_by_name("odd").unwrap();
        let (a, b) = (var(&p, "a"), var(&p, "b"));
        for proc in [even, odd] {
            assert!(du.summary_defs[proc].contains(&AbsLoc::Var(a)));
            assert!(du.summary_defs[proc].contains(&AbsLoc::Var(b)));
        }
    }

    #[test]
    fn assume_defines_and_uses_refined_vars() {
        let (p, pre) = setup("int main() { int x = 3; if (x < 5) x = 1; return x; }");
        let du = compute(&p, &pre);
        let x = var(&p, "x");
        let cp = find_cp(&p, |c| matches!(c, Cmd::Assume(_)));
        assert!(du.defs(cp).contains(&AbsLoc::Var(x)));
        assert!(du.uses(cp).contains(&AbsLoc::Var(x)));
    }

    #[test]
    fn entry_exit_relays() {
        let (p, pre) = setup(
            "int g;
             int f() { return g; }
             int main() { g = 1; return f(); }",
        );
        let du = compute(&p, &pre);
        let f = p.proc_by_name("f").unwrap();
        let g = var(&p, "g");
        let entry = Cp::new(f, p.procs[f].entry);
        let exit = Cp::new(f, p.procs[f].exit);
        assert!(
            du.defs(entry).contains(&AbsLoc::Var(g)),
            "entry relays used g"
        );
        assert!(du.uses(exit).contains(&AbsLoc::Var(p.procs[f].ret_var)));
        assert!(
            !du.is_real(entry, &AbsLoc::Var(g)),
            "entry relays are contractible"
        );
    }

    #[test]
    fn avg_sizes_are_small_for_sparse_programs() {
        let (p, pre) = setup(
            "int a; int b; int c;
             int main() { a = 1; b = 2; c = a + b; return c; }",
        );
        let du = compute(&p, &pre);
        assert!(du.avg_def_size() < 3.0);
        assert!(du.avg_use_size() < 3.0);
        assert!(du.locs.len() >= 3);
    }
}
