//! The non-relational abstract semantics of §3.1, extended with the C
//! features of §6.1 (arrays, structures, allocation, calls).
//!
//! [`eval`] is the paper's `Ê(e)(ŝ)`; [`used_locs`] is `Û(e)(ŝ)` from §3.2
//! (the locations referenced while evaluating `e`); [`transfer`] is `f̂_c`.
//! Call commands transfer as the identity — parameter binding and return
//! binding live on ICFG *edges* ([`bind_args`], [`bind_return`]) so that the
//! same node transfer serves every engine.

use sga_domains::array::ArrayBlk;
use sga_domains::locs::AllocSite;
use sga_domains::{AbsLoc, Interval, Lattice, LocSet, State, Value};
use sga_ir::{BinOp, Cmd, Cond, Cp, Expr, FieldId, LVal, Proc, Program, RelOp, UnOp};

/// Evaluates expression `e` in state `s` — `Ê(e)(ŝ)`.
#[allow(clippy::only_used_in_recursion)] // `program` is part of the eval signature
pub fn eval(program: &Program, e: &Expr, s: &State) -> Value {
    match e {
        Expr::Const(n) => Value::constant(*n),
        Expr::Unknown => Value::unknown_int(),
        Expr::Var(x) => s.get(&AbsLoc::Var(*x)),
        Expr::Field(x, f) => s.get(&AbsLoc::Field(*x, *f)),
        Expr::AddrOf(x) => Value::of_ptr(LocSet::singleton(AbsLoc::Var(*x))),
        Expr::AddrOfField(x, f) => Value::of_ptr(LocSet::singleton(AbsLoc::Field(*x, *f))),
        Expr::AddrOfProc(p) => Value::of_procs(LocSet::singleton(AbsLoc::Proc(*p))),
        Expr::Deref(inner) => {
            let v = eval(program, inner, s);
            read_locs(s, v.deref_targets().iter().copied())
        }
        Expr::DerefField(inner, f) => {
            let v = eval(program, inner, s);
            read_locs(s, field_targets(&v, *f))
        }
        Expr::Unop(op, inner) => {
            let v = eval(program, inner, s);
            match op {
                UnOp::Neg => Value::of_itv(v.itv.neg()),
                UnOp::Not => Value::of_itv(v.itv.cmp_result(RelOp::Eq, &Interval::constant(0))),
                UnOp::BitNot => {
                    if v.itv.is_bottom() {
                        Value::bot()
                    } else {
                        Value::unknown_int()
                    }
                }
            }
        }
        Expr::Binop(op, a, b) => {
            let va = eval(program, a, s);
            let vb = eval(program, b, s);
            eval_binop(*op, &va, &vb)
        }
    }
}

fn eval_binop(op: BinOp, a: &Value, b: &Value) -> Value {
    match op {
        BinOp::Add | BinOp::Sub => {
            let itv = if op == BinOp::Add {
                a.itv.add(&b.itv)
            } else {
                a.itv.sub(&b.itv)
            };
            // Pointer arithmetic: points-to sets are offset-insensitive; the
            // array component shifts its offsets.
            let delta = |i: &Interval| -> Interval {
                let d = if i.is_bottom() {
                    Interval::constant(0)
                } else {
                    *i
                };
                if op == BinOp::Add {
                    d
                } else {
                    d.neg()
                }
            };
            let mut arr = ArrayBlk::empty();
            if !a.arr.is_empty() {
                arr = arr.join(&a.arr.shift(&delta(&b.itv)));
            }
            if !b.arr.is_empty() && op == BinOp::Add {
                arr = arr.join(&b.arr.shift(&if a.itv.is_bottom() {
                    Interval::constant(0)
                } else {
                    a.itv
                }));
            }
            Value {
                itv,
                ptr: a.ptr.join(&b.ptr),
                arr,
                procs: a.procs.join(&b.procs),
            }
        }
        BinOp::Mul => Value::of_itv(a.itv.mul(&b.itv)),
        BinOp::Div => Value::of_itv(a.itv.div(&b.itv)),
        BinOp::Mod => Value::of_itv(a.itv.rem(&b.itv)),
        BinOp::Cmp(rel) => Value::of_itv(a.itv.cmp_result(rel, &b.itv)),
        BinOp::And | BinOp::Or | BinOp::Bits => {
            if a.itv.is_bottom() && a.ptr.is_empty() && a.arr.is_empty() {
                Value::bot()
            } else {
                Value::unknown_int()
            }
        }
    }
}

fn read_locs(s: &State, locs: impl Iterator<Item = AbsLoc>) -> Value {
    let mut out = Value::bot();
    for l in locs {
        out = out.join(&s.get(&l));
    }
    out
}

/// The locations `(*v).f` denotes.
fn field_targets(v: &Value, f: FieldId) -> impl Iterator<Item = AbsLoc> + '_ {
    v.deref_targets()
        .iter()
        .map(move |l| refine_field(*l, f))
        .collect::<Vec<_>>()
        .into_iter()
}

/// Adds a field selector to a pointed-to location (nested aggregates
/// collapse onto the outermost field, a standard coarse approximation).
fn refine_field(l: AbsLoc, f: FieldId) -> AbsLoc {
    match l {
        AbsLoc::Var(x) => AbsLoc::Field(x, f),
        AbsLoc::Alloc(site) => AbsLoc::AllocField(site, f),
        other => other,
    }
}

/// `Û(e)(ŝ)` from §3.2: the abstract locations referenced while computing
/// `Ê(e)(ŝ)`.
pub fn used_locs(program: &Program, e: &Expr, s: &State, out: &mut Vec<AbsLoc>) {
    match e {
        Expr::Const(_)
        | Expr::Unknown
        | Expr::AddrOf(_)
        | Expr::AddrOfField(_, _)
        | Expr::AddrOfProc(_) => {}
        Expr::Var(x) => out.push(AbsLoc::Var(*x)),
        Expr::Field(x, f) => out.push(AbsLoc::Field(*x, *f)),
        Expr::Deref(inner) => {
            used_locs(program, inner, s, out);
            let v = eval(program, inner, s);
            out.extend(v.deref_targets().iter().copied());
        }
        Expr::DerefField(inner, f) => {
            used_locs(program, inner, s, out);
            let v = eval(program, inner, s);
            out.extend(field_targets(&v, *f));
        }
        Expr::Unop(_, inner) => used_locs(program, inner, s, out),
        Expr::Binop(_, a, b) => {
            used_locs(program, a, s, out);
            used_locs(program, b, s, out);
        }
    }
}

/// The assignment targets of l-value `lv` in state `s`, plus whether a
/// strong update is permitted (single non-summary target).
pub fn lval_targets(_program: &Program, lv: &LVal, s: &State) -> (LocSet, bool) {
    match lv {
        LVal::Var(x) => (LocSet::singleton(AbsLoc::Var(*x)), true),
        LVal::Field(x, f) => (LocSet::singleton(AbsLoc::Field(*x, *f)), true),
        LVal::Deref(x) => {
            let targets = s.get(&AbsLoc::Var(*x)).deref_targets();
            let strong = targets.as_singleton().is_some_and(|l| !l.is_summary());
            (targets, strong)
        }
        LVal::DerefField(x, f) => {
            let v = s.get(&AbsLoc::Var(*x));
            let targets: LocSet = field_targets(&v, *f).collect();
            let strong = targets.as_singleton().is_some_and(|l| !l.is_summary());
            (targets, strong)
        }
    }
}

/// Locations read while evaluating l-value `lv`'s target set.
pub fn lval_used(lv: &LVal, out: &mut Vec<AbsLoc>) {
    match lv {
        LVal::Var(_) | LVal::Field(_, _) => {}
        LVal::Deref(x) | LVal::DerefField(x, _) => out.push(AbsLoc::Var(*x)),
    }
}

/// Writes `v` through `lv`: strong update on a unique non-summary target,
/// weak update otherwise.
pub fn assign(program: &Program, s: &State, lv: &LVal, v: &Value) -> State {
    let (targets, strong) = lval_targets(program, lv, s);
    if strong {
        if let Some(l) = targets.as_singleton() {
            return s.set(l, v.clone());
        }
    }
    s.weak_set_all(&targets, v)
}

/// Refines state `s` with condition `cond` — the `{x < n}` transfer of §3.1,
/// generalized to refine both operands when they are directly locations.
///
/// Per the paper's `f̂_c` this refines *only the mentioned locations*; it
/// never smashes the whole state to ⊥ on a contradiction (the refined
/// locations become ⊥-valued instead). This per-location behaviour is what
/// makes the sparse analysis' precision identical (Lemma 2): refinement is a
/// def of exactly `D̂(c)`, so values of unrelated locations flow around the
/// assume in both engines.
pub fn refine(program: &Program, s: &State, cond: &Cond) -> State {
    let lv = eval(program, &cond.lhs, s);
    let rv = eval(program, &cond.rhs, s);
    let mut out = s.clone();
    if let Some(l) = direct_loc(&cond.lhs) {
        let refined = lv.itv.filter(cond.op, &rv.itv);
        out = out.set(l, out.get(&l).with_itv(refined));
    }
    if let Some(r) = direct_loc(&cond.rhs) {
        let refined = rv.itv.filter(cond.op.swap(), &lv.itv);
        out = out.set(r, out.get(&r).with_itv(refined));
    }
    out
}

fn direct_loc(e: &Expr) -> Option<AbsLoc> {
    match e {
        Expr::Var(x) => Some(AbsLoc::Var(*x)),
        Expr::Field(x, f) => Some(AbsLoc::Field(*x, *f)),
        _ => None,
    }
}

/// Whether a refined branch state is unreachable: some location the
/// condition constrains became ⊥ while its input was not.
pub fn branch_is_dead(program: &Program, s: &State, cond: &Cond) -> bool {
    let lv = eval(program, &cond.lhs, s);
    let rv = eval(program, &cond.rhs, s);
    if lv.itv.is_bottom() || rv.itv.is_bottom() {
        // No numeric evidence either way (pointers compared, or ⊥ inputs):
        // only dead if the whole inputs are ⊥.
        return lv.is_bottom() || rv.is_bottom();
    }
    lv.itv.cmp_result(cond.op, &rv.itv) == Interval::constant(0)
}

/// The node transfer function `f̂_c` (identity for call nodes; see module
/// docs). `cp` is needed because allocation sites are control points.
pub fn transfer(program: &Program, cp: Cp, s: &State) -> State {
    match program.cmd(cp) {
        Cmd::Skip | Cmd::Call { .. } => s.clone(),
        Cmd::Assign(lv, e) => {
            let v = eval(program, e, s);
            assign(program, s, lv, &v)
        }
        Cmd::Alloc(lv, size) => {
            let sz = eval(program, size, s).itv;
            let site = AbsLoc::Alloc(AllocSite(cp));
            let v = Value::of_arr(ArrayBlk::alloc(site, sz));
            assign(program, s, lv, &v)
        }
        Cmd::Assume(cond) => refine(program, s, cond),
        Cmd::Return(e) => {
            let ret = program.procs[cp.proc].ret_var;
            let v = match e {
                Some(e) => eval(program, e, s),
                None => Value::bot(),
            };
            s.set(AbsLoc::Var(ret), v)
        }
    }
}

/// Call-edge transfer: binds actuals to the callee's formals in the
/// caller's post-call-node state.
pub fn bind_args(program: &Program, callee: &Proc, args: &[Expr], s: &State) -> State {
    let mut out = s.clone();
    for (i, &p) in callee.params.iter().enumerate() {
        let v = match args.get(i) {
            Some(a) => eval(program, a, s),
            None => Value::unknown_int(),
        };
        out = out.set(AbsLoc::Var(p), v);
    }
    out
}

/// Return-edge transfer: assigns the callee's return variable into the call
/// site's return l-value.
pub fn bind_return(program: &Program, callee: &Proc, ret: Option<&LVal>, s: &State) -> State {
    let Some(lv) = ret else { return s.clone() };
    let v = s.get(&AbsLoc::Var(callee.ret_var));
    assign(program, s, lv, &v)
}

/// Models a call to an external procedure: the return l-value becomes an
/// arbitrary integer; no side effects (§6).
pub fn bind_external(program: &Program, ret: Option<&LVal>, s: &State) -> State {
    let Some(lv) = ret else { return s.clone() };
    assign(program, s, lv, &Value::unknown_int())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sga_cfront::parse;
    use sga_ir::VarId;
    use sga_utils::Idx;

    fn prog() -> Program {
        parse("int main() { return 0; }").unwrap()
    }

    fn var(program: &Program, name: &str) -> VarId {
        program
            .vars
            .iter_enumerated()
            .find(|(_, v)| v.name == name)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    #[test]
    fn eval_constants_and_arith() {
        let p = prog();
        let s = State::new();
        let e = Expr::binop(BinOp::Add, Expr::Const(2), Expr::Const(3));
        assert_eq!(eval(&p, &e, &s).itv, Interval::constant(5));
        let cmp = Expr::binop(BinOp::Cmp(RelOp::Lt), Expr::Const(2), Expr::Const(3));
        assert_eq!(eval(&p, &cmp, &s).itv, Interval::constant(1));
    }

    #[test]
    fn eval_var_and_deref() {
        let p = parse("int main() { int x; int *q; return 0; }").unwrap();
        let x = var(&p, "x");
        let q = var(&p, "q");
        let s = State::new().set(AbsLoc::Var(x), Value::constant(7)).set(
            AbsLoc::Var(q),
            Value::of_ptr(LocSet::singleton(AbsLoc::Var(x))),
        );
        let deref = Expr::deref(Expr::Var(q));
        assert_eq!(eval(&p, &deref, &s).itv, Interval::constant(7));
        // Û(*q) = {q, x}
        let mut used = Vec::new();
        used_locs(&p, &deref, &s, &mut used);
        used.sort_unstable();
        assert_eq!(used, vec![AbsLoc::Var(x), AbsLoc::Var(q)]);
    }

    #[test]
    fn strong_vs_weak_update() {
        let p = parse("int main() { int a; int b; int *q; return 0; }").unwrap();
        let (a, b, q) = (var(&p, "a"), var(&p, "b"), var(&p, "q"));
        // q -> {a}: strong update overwrites.
        let s = State::new().set(AbsLoc::Var(a), Value::constant(1)).set(
            AbsLoc::Var(q),
            Value::of_ptr(LocSet::singleton(AbsLoc::Var(a))),
        );
        let s2 = assign(&p, &s, &LVal::Deref(q), &Value::constant(9));
        assert_eq!(s2.get(&AbsLoc::Var(a)).itv, Interval::constant(9));
        // q -> {a, b}: weak update joins.
        let two: LocSet = [AbsLoc::Var(a), AbsLoc::Var(b)].into_iter().collect();
        let s3 = s.set(AbsLoc::Var(q), Value::of_ptr(two));
        let s4 = assign(&p, &s3, &LVal::Deref(q), &Value::constant(9));
        assert_eq!(s4.get(&AbsLoc::Var(a)).itv, Interval::range(1, 9));
        assert_eq!(s4.get(&AbsLoc::Var(b)).itv, Interval::range(9, 9));
    }

    #[test]
    fn assume_refines_both_sides() {
        let p = parse("int main() { int x; int y; return 0; }").unwrap();
        let (x, y) = (var(&p, "x"), var(&p, "y"));
        let s = State::new()
            .set(AbsLoc::Var(x), Value::of_itv(Interval::range(0, 100)))
            .set(AbsLoc::Var(y), Value::of_itv(Interval::range(40, 60)));
        let cond = Cond::new(Expr::Var(x), RelOp::Lt, Expr::Var(y));
        let r = refine(&p, &s, &cond);
        assert_eq!(r.get(&AbsLoc::Var(x)).itv, Interval::range(0, 59));
        assert_eq!(
            r.get(&AbsLoc::Var(y)).itv,
            Interval::range(40, 60).filter(RelOp::Gt, &Interval::range(0, 100))
        );
    }

    #[test]
    fn dead_branch_detected() {
        let p = parse("int main() { int x; return 0; }").unwrap();
        let x = var(&p, "x");
        let s = State::new().set(AbsLoc::Var(x), Value::constant(5));
        let cond = Cond::new(Expr::Var(x), RelOp::Gt, Expr::Const(10));
        assert!(branch_is_dead(&p, &s, &cond));
        let cond2 = Cond::new(Expr::Var(x), RelOp::Le, Expr::Const(10));
        assert!(!branch_is_dead(&p, &s, &cond2));
    }

    #[test]
    fn alloc_creates_array_block() {
        let p = parse("int main() { int *q = malloc(10); return 0; }").unwrap();
        // Find the alloc node.
        let main = &p.procs[p.main];
        let (nid, _) = main
            .nodes
            .iter_enumerated()
            .find(|(_, n)| matches!(n.cmd, Cmd::Alloc(_, _)))
            .expect("has alloc");
        let cp = Cp::new(p.main, nid);
        let s = transfer(&p, cp, &State::new());
        let Cmd::Alloc(lv, _) = p.cmd(cp) else {
            unreachable!()
        };
        let target = AbsLoc::Var(lv.base());
        let v = s.get(&target);
        assert_eq!(v.arr.len(), 1);
        let (base, info) = v.arr.iter().next().unwrap();
        assert_eq!(*base, AbsLoc::Alloc(AllocSite(cp)));
        assert_eq!(info.size, Interval::constant(10));
    }

    #[test]
    fn pointer_arith_shifts_array_offset() {
        let p = prog();
        let site = AllocSite(Cp::new(p.main, sga_ir::NodeId::new(0)));
        let arr = Value::of_arr(ArrayBlk::alloc(AbsLoc::Alloc(site), Interval::constant(10)));
        let shifted = eval_binop(BinOp::Add, &arr, &Value::constant(3));
        let info = shifted.arr.get(&AbsLoc::Alloc(site)).unwrap();
        assert_eq!(info.offset, Interval::constant(3));
        let back = eval_binop(BinOp::Sub, &shifted, &Value::constant(1));
        let info2 = back.arr.get(&AbsLoc::Alloc(site)).unwrap();
        assert_eq!(info2.offset, Interval::constant(2));
    }

    #[test]
    fn return_sets_ret_var() {
        let p = parse("int main() { return 41; }").unwrap();
        let main = &p.procs[p.main];
        let (nid, _) = main
            .nodes
            .iter_enumerated()
            .find(|(_, n)| matches!(n.cmd, Cmd::Return(_)))
            .unwrap();
        let s = transfer(&p, Cp::new(p.main, nid), &State::new());
        assert_eq!(
            s.get(&AbsLoc::Var(main.ret_var)).itv,
            Interval::constant(41)
        );
    }
}
