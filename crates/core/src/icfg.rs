//! The interprocedural control-flow graph shared by the dense engines.
//!
//! Nodes are the program's control points. Edges:
//!
//! * [`EdgeKind::Intra`] — ordinary CFG flow;
//! * [`EdgeKind::Call`] — call site → callee entry (argument binding);
//! * [`EdgeKind::Return`] — callee exit → the call's CFG successors
//!   (return-value binding); `vanilla` passes the whole exit state,
//!   `base` restricts it to the callee's accessed locations and joins with
//!   the caller's state at the call (access-based localization \[38\]);
//! * [`EdgeKind::ExternalRet`] — call → successor for calls whose targets
//!   are external: the return value becomes ⊤, no other effect (§6).
//!
//! Also computed here: worklist priorities (procedure-major, WTO-minor) and
//! the widening points (WTO component heads plus procedure entries, the
//! latter needed for recursion).

use crate::preanalysis::PreAnalysis;
use sga_ir::{Cmd, Cp, Program};
use sga_utils::graph::weak_topological_order;
use sga_utils::{FxHashMap, FxHashSet, Idx};

/// The role of an ICFG edge, which selects its transfer function.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum EdgeKind {
    /// Plain intraprocedural flow.
    Intra,
    /// `site` → callee entry.
    Call {
        /// The call node.
        site: Cp,
    },
    /// Callee exit → return point of `site`.
    Return {
        /// The call node this return corresponds to.
        site: Cp,
    },
    /// `site` → return point, for external callees.
    ExternalRet {
        /// The call node.
        site: Cp,
    },
}

/// One incoming edge: the source control point and the edge role.
#[derive(Clone, Copy, Debug)]
pub struct InEdge {
    /// Source control point (whose post-state feeds the edge).
    pub src: Cp,
    /// Edge role.
    pub kind: EdgeKind,
}

/// The interprocedural CFG.
#[derive(Debug)]
pub struct Icfg {
    /// Incoming edges per control point.
    pub in_edges: FxHashMap<Cp, Vec<InEdge>>,
    /// Outgoing edge targets per control point (for worklist pushes).
    pub out_targets: FxHashMap<Cp, Vec<Cp>>,
    /// Worklist priority of each control point (lower runs first).
    pub priority: FxHashMap<Cp, u32>,
    /// Widening points: WTO heads and procedure entries.
    pub widen_points: FxHashSet<Cp>,
}

impl Icfg {
    /// Builds the ICFG using the pre-analysis' resolved call graph.
    pub fn build(program: &Program, pre: &PreAnalysis) -> Icfg {
        let mut in_edges: FxHashMap<Cp, Vec<InEdge>> = FxHashMap::default();
        let mut out_targets: FxHashMap<Cp, Vec<Cp>> = FxHashMap::default();
        let add = |in_edges: &mut FxHashMap<Cp, Vec<InEdge>>,
                   out_targets: &mut FxHashMap<Cp, Vec<Cp>>,
                   src: Cp,
                   dst: Cp,
                   kind: EdgeKind| {
            in_edges.entry(dst).or_default().push(InEdge { src, kind });
            out_targets.entry(src).or_default().push(dst);
        };

        for (pid, proc) in program.procs.iter_enumerated() {
            if proc.is_external {
                continue;
            }
            for (nid, node) in proc.nodes.iter_enumerated() {
                let cp = Cp::new(pid, nid);
                if let Cmd::Call { .. } = &node.cmd {
                    let targets = pre.call_targets(cp);
                    let internal: Vec<_> = targets
                        .iter()
                        .copied()
                        .filter(|&t| !program.procs[t].is_external)
                        .collect();
                    let has_external = internal.len() < targets.len() || targets.is_empty();
                    for &t in &internal {
                        let callee = &program.procs[t];
                        let entry = Cp::new(t, callee.entry);
                        let exit = Cp::new(t, callee.exit);
                        add(
                            &mut in_edges,
                            &mut out_targets,
                            cp,
                            entry,
                            EdgeKind::Call { site: cp },
                        );
                        for &r in proc.succs_of(nid) {
                            let ret_site = Cp::new(pid, r);
                            add(
                                &mut in_edges,
                                &mut out_targets,
                                exit,
                                ret_site,
                                EdgeKind::Return { site: cp },
                            );
                            // The localized return join also reads the call
                            // site's state, so a change there must requeue
                            // the return site even without a direct edge.
                            out_targets.entry(cp).or_default().push(ret_site);
                        }
                    }
                    if has_external {
                        for &r in proc.succs_of(nid) {
                            add(
                                &mut in_edges,
                                &mut out_targets,
                                cp,
                                Cp::new(pid, r),
                                EdgeKind::ExternalRet { site: cp },
                            );
                        }
                    }
                } else {
                    for &s in proc.succs_of(nid) {
                        add(
                            &mut in_edges,
                            &mut out_targets,
                            cp,
                            Cp::new(pid, s),
                            EdgeKind::Intra,
                        );
                    }
                }
            }
        }

        // Priorities and widening points from per-procedure WTOs.
        let numbering = program.point_numbering();
        let mut priority: FxHashMap<Cp, u32> = FxHashMap::default();
        let mut widen_points: FxHashSet<Cp> = FxHashSet::default();
        // Call-site counts: a callee invoked from two or more sites closes
        // interprocedural ICFG cycles (exit → return-site₁ → … → site₂ →
        // entry) even when the call graph is acyclic; every such cycle
        // passes the callee's entry, so multi-site entries must widen.
        let mut site_count: FxHashMap<sga_ir::ProcId, usize> = FxHashMap::default();
        for targets in pre.callgraph.site_targets.values() {
            for &t in targets {
                *site_count.entry(t).or_insert(0) += 1;
            }
        }
        for (pid, proc) in program.procs.iter_enumerated() {
            if proc.is_external {
                continue;
            }
            // Entries and exits widen for recursive procedures
            // (interprocedural cycles run through one or the other); entries
            // also widen for multi-site callees (see above). Single-site
            // non-recursive entries keep plain joins — widening there would
            // needlessly discard the argument binding.
            if pre.callgraph.is_recursive(pid) {
                widen_points.insert(Cp::new(pid, proc.entry));
                widen_points.insert(Cp::new(pid, proc.exit));
            }
            if site_count.get(&pid).copied().unwrap_or(0) >= 2 {
                widen_points.insert(Cp::new(pid, proc.entry));
            }
            let wto = weak_topological_order(&proc.cfg_view(), proc.entry.index());
            for h in wto.heads() {
                widen_points.insert(Cp::new(pid, sga_ir::NodeId::new(h)));
            }
            let base = numbering.index(Cp::new(pid, proc.entry)) as u32;
            for (rank, node) in wto.linearize().into_iter().enumerate() {
                priority.insert(Cp::new(pid, sga_ir::NodeId::new(node)), base + rank as u32);
            }
            // Nodes outside the WTO (unreachable exits of infinite loops)
            // still need a priority.
            for nid in proc.nodes.indices() {
                let cp = Cp::new(pid, nid);
                priority.entry(cp).or_insert(base + proc.nodes.len() as u32);
            }
        }

        Icfg {
            in_edges,
            out_targets,
            priority,
            widen_points,
        }
    }

    /// Incoming edges of `cp`.
    pub fn incoming(&self, cp: Cp) -> &[InEdge] {
        self.in_edges.get(&cp).map_or(&[], Vec::as_slice)
    }

    /// Control points to re-queue after `cp` changes.
    pub fn targets(&self, cp: Cp) -> &[Cp] {
        self.out_targets.get(&cp).map_or(&[], Vec::as_slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::preanalysis;
    use sga_cfront::parse;

    fn build(src: &str) -> (Program, Icfg) {
        let p = parse(src).unwrap();
        let pre = preanalysis::run(&p);
        let icfg = Icfg::build(&p, &pre);
        (p, icfg)
    }

    #[test]
    fn call_edges_replace_fallthrough() {
        let (p, icfg) = build(
            "int f() { return 1; }
             int main() { int r = f(); return r; }",
        );
        let f = p.proc_by_name("f").unwrap();
        let f_entry = Cp::new(f, p.procs[f].entry);
        let f_exit = Cp::new(f, p.procs[f].exit);
        // f's entry has an incoming Call edge.
        assert!(icfg
            .incoming(f_entry)
            .iter()
            .any(|e| matches!(e.kind, EdgeKind::Call { .. })));
        // Some node in main has an incoming Return edge from f's exit.
        let has_ret = p.procs[p.main].nodes.indices().any(|n| {
            icfg.incoming(Cp::new(p.main, n))
                .iter()
                .any(|e| e.src == f_exit && matches!(e.kind, EdgeKind::Return { .. }))
        });
        assert!(has_ret);
    }

    #[test]
    fn external_calls_get_external_edges() {
        let (p, icfg) = build("int mystery(int); int main() { return mystery(1); }");
        let has_ext = p.procs[p.main].nodes.indices().any(|n| {
            icfg.incoming(Cp::new(p.main, n))
                .iter()
                .any(|e| matches!(e.kind, EdgeKind::ExternalRet { .. }))
        });
        assert!(has_ext);
    }

    #[test]
    fn loop_heads_are_widening_points() {
        let (p, icfg) = build("int main() { int i = 0; while (i < 5) i = i + 1; return i; }");
        // At least one non-entry widening point (the loop head).
        let entry = Cp::new(p.main, p.procs[p.main].entry);
        assert!(icfg.widen_points.iter().any(|&w| w != entry));
    }

    #[test]
    fn priorities_are_total_over_points() {
        let (p, icfg) = build(
            "int f(int x) { return x; }
             int main() { for (;;) { if (f(1)) break; } return 0; }",
        );
        for cp in p.all_points() {
            if !p.procs[cp.proc].is_external {
                assert!(icfg.priority.contains_key(&cp), "no priority for {cp}");
            }
        }
    }
}
