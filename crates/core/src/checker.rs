//! A Sparrow-style client: buffer-overrun detection on top of an interval
//! analysis result.
//!
//! Two checks:
//!
//! * **buffer overruns** ([`check_overruns`]) — for every access through a
//!   pointer carrying an array block `(base, offset, size)`, alarm unless
//!   `offset ⊆ [0, size-1]` is provable;
//! * **null dereferences** ([`check_null_derefs`]) — null is the integer
//!   component of a pointer value (the frontend lowers `NULL` to `0`), so a
//!   dereferenced pointer whose abstract value contains 0 may be null; one
//!   with *only* 0 definitely is.
//!
//! This is the class of property the original system hunts (SPARROW is an
//! error-detection tool for full C), and it is the client we use to
//! sanity-check that precision survives sparsification end to end.

use crate::interval::IntervalResult;
use sga_domains::interval::Bound;
use sga_domains::{AbsLoc, Interval, Lattice};
use sga_ir::{Cmd, Cp, Expr, LVal, Program, VarId};

/// The property an alarm is about.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AlarmKind {
    /// Array access may escape its block.
    Overrun,
    /// Dereferenced pointer may be null.
    NullDeref,
}

/// One potential memory error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alarm {
    /// What kind of error.
    pub kind: AlarmKind,
    /// The accessing control point.
    pub cp: Cp,
    /// Source line of the access.
    pub line: u32,
    /// The pointer variable involved.
    pub ptr: VarId,
    /// Rendered offset interval (overruns) or the pointer's numeric
    /// component (null checks).
    pub offset: String,
    /// Rendered size interval.
    pub size: String,
    /// Whether the access is provably erroneous (vs merely unproven).
    pub definite: bool,
}

impl std::fmt::Display for Alarm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let suffix = if self.definite { " [definite]" } else { "" };
        match self.kind {
            AlarmKind::Overrun => write!(
                f,
                "line {}: possible buffer overrun at {} (offset {}, size {}){suffix}",
                self.line, self.cp, self.offset, self.size,
            ),
            AlarmKind::NullDeref => write!(
                f,
                "line {}: possible null dereference at {} (pointer value {}){suffix}",
                self.line, self.cp, self.size,
            ),
        }
    }
}

/// Scans the program for array accesses whose offset may escape the block.
pub fn check_overruns(program: &Program, result: &IntervalResult) -> Vec<Alarm> {
    let mut alarms = Vec::new();
    for (pid, proc) in program.procs.iter_enumerated() {
        if proc.is_external {
            continue;
        }
        for (nid, node) in proc.nodes.iter_enumerated() {
            let cp = Cp::new(pid, nid);
            let mut ptrs: Vec<VarId> = Vec::new();
            collect_deref_ptrs(&node.cmd, &mut ptrs);
            for ptr in ptrs {
                // The pointer's value at the access: its value in the input
                // states — approximate with its reaching definitions' join
                // over all stored states that bind it at this point's
                // predecessors; the definition point's own state is exact
                // for temps (which array accesses are lowered through).
                let v = value_before(program, result, cp, ptr);
                for (_, info) in v.arr.iter() {
                    if info.offset.is_bottom() || info.size.is_bottom() {
                        continue;
                    }
                    let max_index = match info.size.lo() {
                        Some(Bound::Int(s)) => Interval::range(0, (s - 1).max(0)),
                        _ => Interval::top(),
                    };
                    if !info.offset.le(&max_index) {
                        let definite = info.offset.meet(&max_index).is_bottom();
                        alarms.push(Alarm {
                            kind: AlarmKind::Overrun,
                            cp,
                            line: node.line,
                            ptr,
                            offset: info.offset.to_string(),
                            size: info.size.to_string(),
                            definite,
                        });
                    }
                }
            }
        }
    }
    alarms.sort_by_key(|a| (a.line, a.cp));
    alarms
}

/// Scans for dereferences of potentially-null pointers.
pub fn check_null_derefs(program: &Program, result: &IntervalResult) -> Vec<Alarm> {
    let mut alarms = Vec::new();
    for (pid, proc) in program.procs.iter_enumerated() {
        if proc.is_external {
            continue;
        }
        for (nid, node) in proc.nodes.iter_enumerated() {
            let cp = Cp::new(pid, nid);
            let mut ptrs: Vec<VarId> = Vec::new();
            collect_deref_ptrs(&node.cmd, &mut ptrs);
            for ptr in ptrs {
                let v = value_before(program, result, cp, ptr);
                let has_targets = !v.ptr.is_empty() || !v.arr.is_empty();
                let maybe_null = v.itv.contains(0);
                if !maybe_null {
                    continue;
                }
                alarms.push(Alarm {
                    kind: AlarmKind::NullDeref,
                    cp,
                    line: node.line,
                    ptr,
                    offset: "null".to_string(),
                    size: v.itv.to_string(),
                    definite: !has_targets && v.itv.as_const() == Some(0),
                });
            }
        }
    }
    alarms.sort_by_key(|a| (a.line, a.cp));
    alarms
}

/// The value of `ptr` flowing into `cp`: join over the post-states of its
/// CFG predecessors (dense) or of its recorded definitions (sparse).
fn value_before(
    program: &Program,
    result: &IntervalResult,
    cp: Cp,
    ptr: VarId,
) -> sga_domains::Value {
    let l = AbsLoc::Var(ptr);
    let proc = &program.procs[cp.proc];
    let mut acc = sga_domains::Value::bot();
    for &p in proc.preds_of(cp.node) {
        acc = acc.join(&result.value_at(Cp::new(cp.proc, p), &l));
    }
    if acc.is_bottom() {
        // Sparse results may not bind the pointer at the predecessor; fall
        // back to the join over all points that bind it.
        for s in result.values.values() {
            if let Some(v) = s.get_ref(&l) {
                acc = acc.join(v);
            }
        }
    }
    acc
}

fn collect_expr_ptrs(e: &Expr, out: &mut Vec<VarId>) {
    match e {
        Expr::Deref(inner) | Expr::DerefField(inner, _) => {
            if let Expr::Var(v) = &**inner {
                out.push(*v);
            }
            collect_expr_ptrs(inner, out);
        }
        Expr::Binop(_, a, b) => {
            collect_expr_ptrs(a, out);
            collect_expr_ptrs(b, out);
        }
        Expr::Unop(_, a) => collect_expr_ptrs(a, out),
        _ => {}
    }
}

fn collect_deref_ptrs(cmd: &Cmd, out: &mut Vec<VarId>) {
    match cmd {
        Cmd::Assign(lv, e) | Cmd::Alloc(lv, e) => {
            if let LVal::Deref(v) | LVal::DerefField(v, _) = lv {
                out.push(*v);
            }
            collect_expr_ptrs(e, out);
        }
        Cmd::Assume(c) => {
            collect_expr_ptrs(&c.lhs, out);
            collect_expr_ptrs(&c.rhs, out);
        }
        Cmd::Call { ret, args, .. } => {
            if let Some(LVal::Deref(v) | LVal::DerefField(v, _)) = ret {
                out.push(*v);
            }
            for a in args {
                collect_expr_ptrs(a, out);
            }
        }
        Cmd::Return(Some(e)) => collect_expr_ptrs(e, out),
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{analyze, Engine};
    use sga_cfront::parse;

    #[test]
    fn in_bounds_loop_is_clean() {
        let p = parse(
            "int main() {
                int *buf = malloc(10);
                int i = 0;
                while (i < 10) { buf[i] = 1; i = i + 1; }
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_overruns(&p, &r);
        assert!(alarms.is_empty(), "false alarms: {alarms:?}");
    }

    #[test]
    fn off_by_one_is_reported() {
        let p = parse(
            "int main() {
                int *buf = malloc(10);
                int i = 0;
                while (i <= 10) { buf[i] = 1; i = i + 1; }
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_overruns(&p, &r);
        assert!(!alarms.is_empty(), "off-by-one missed");
    }

    #[test]
    fn definite_overrun_flagged() {
        let p = parse(
            "int main() {
                int *buf = malloc(4);
                buf[9] = 1;
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_overruns(&p, &r);
        assert!(alarms.iter().any(|a| a.definite), "{alarms:?}");
    }

    #[test]
    fn engines_agree_on_alarm_count() {
        let src = "int main(int n) {
                int *buf = malloc(8);
                int i = 0;
                while (i < n) { buf[i] = i; i = i + 1; }
                buf[7] = 0;
                return 0;
             }";
        let p = parse(src).unwrap();
        let base = check_overruns(&p, &analyze(&p, Engine::Base)).len();
        let sparse = check_overruns(&p, &analyze(&p, Engine::Sparse)).len();
        assert_eq!(base, sparse, "alarm counts must match between engines");
    }
}

#[cfg(test)]
mod null_tests {
    use super::*;
    use crate::interval::{analyze, Engine};
    use sga_cfront::parse;

    #[test]
    fn definite_null_deref() {
        let p = parse("int main() { int *p = 0; *p = 1; return 0; }").unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_null_derefs(&p, &r);
        assert!(alarms.iter().any(|a| a.definite), "{alarms:?}");
    }

    #[test]
    fn possible_null_after_join() {
        let p = parse(
            "int g;
             int main(int c) {
                int *p = 0;
                if (c) p = &g;
                *p = 1;
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_null_derefs(&p, &r);
        assert_eq!(alarms.len(), 1);
        assert!(!alarms[0].definite, "join with &g makes it only possible");
    }

    #[test]
    fn guarded_deref_is_clean() {
        let p = parse(
            "int g;
             int main(int c) {
                int *p = 0;
                if (c) p = &g;
                if (p != 0) { *p = 1; }
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_null_derefs(&p, &r);
        // The null-comparison refinement prunes 0 from p's interval
        // component inside the guard.
        assert!(alarms.is_empty(), "{alarms:?}");
    }

    #[test]
    fn malloc_result_not_null_flagged() {
        let p = parse("int main() { int *p = malloc(4); *p = 1; return 0; }").unwrap();
        let r = analyze(&p, Engine::Sparse);
        assert!(check_null_derefs(&p, &r).is_empty());
    }
}

/// Reports `assume` points whose condition is provably never true — dead
/// branches (`if (x) …` where the analysis bounds `x` away from the
/// condition). A development-time client: dead guards often flag logic
/// errors or stale feature checks.
pub fn check_dead_branches(program: &Program, result: &IntervalResult) -> Vec<Cp> {
    use sga_ir::Expr;
    let mut dead = Vec::new();
    for (pid, proc) in program.procs.iter_enumerated() {
        if proc.is_external {
            continue;
        }
        for (nid, node) in proc.nodes.iter_enumerated() {
            let Cmd::Assume(cond) = &node.cmd else {
                continue;
            };
            let cp = Cp::new(pid, nid);
            // The refined value of a directly-mentioned location: ⊥ numeric
            // with a non-⊥ input means the condition excluded every value.
            let Expr::Var(x) = &cond.lhs else { continue };
            let l = AbsLoc::Var(*x);
            let after = result.value_at(cp, &l);
            let before = value_before(program, result, cp, *x);
            if after.itv.is_bottom()
                && !before.itv.is_bottom()
                && before.ptr.is_empty()
                && before.arr.is_empty()
            {
                dead.push(cp);
            }
        }
    }
    dead.sort();
    dead
}

#[cfg(test)]
mod dead_branch_tests {
    use super::*;
    use crate::interval::{analyze, Engine};
    use sga_cfront::parse;

    #[test]
    fn impossible_guard_is_dead() {
        let p = parse(
            "int main() {
                int x = 3;
                if (x > 10) { x = 0; }
                return x;
             }",
        )
        .unwrap();
        for engine in [Engine::Base, Engine::Sparse] {
            let r = analyze(&p, engine);
            let dead = check_dead_branches(&p, &r);
            assert_eq!(dead.len(), 1, "{engine:?}: {dead:?}");
        }
    }

    #[test]
    fn feasible_guards_are_live() {
        let p = parse(
            "int main(int c) {
                int x = c;
                if (x > 10) { x = 0; }
                if (x < 0) { x = 1; }
                return x;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        assert!(check_dead_branches(&p, &r).is_empty());
    }
}
