//! Sparrow-style clients: error checkers on top of an interval analysis
//! result, reporting structured [`Diagnostic`]s.
//!
//! Four checks:
//!
//! * **buffer overruns** ([`check_overruns`]) — for every access through a
//!   pointer carrying an array block `(base, offset, size)`, alarm unless
//!   `offset ⊆ [0, size-1]` is provable;
//! * **null dereferences** ([`check_null_derefs`]) — null is the integer
//!   component of a pointer value (the frontend lowers `NULL` to `0`), so a
//!   dereferenced pointer whose abstract value contains 0 may be null; one
//!   with *only* 0 definitely is;
//! * **division by zero** ([`check_div_by_zero`]) — every `/` or `%`
//!   divisor whose interval contains 0;
//! * **uninitialized reads** ([`check_uninit_reads`]) — reads of local
//!   scalars that the flow-insensitive pre-analysis (`T̂`) binds nowhere;
//!   since `T̂` over-approximates every assignment in the program, an
//!   unbound local provably has no initializing write.
//!
//! [`check_all`] runs all four, orders the result canonically and assigns
//! the stable fingerprints. The non-definite subset is what the octagon
//! triage pass ([`crate::triage`]) later tries to discharge.
//!
//! This is the class of property the original system hunts (SPARROW is an
//! error-detection tool for full C), and it is the client we use to
//! sanity-check that precision survives sparsification end to end.

use crate::interval::IntervalResult;
use crate::preanalysis::PreAnalysis;
use sga_diag::{DiagKind, Diagnostic, Evidence};
use sga_domains::interval::Bound;
use sga_domains::{AbsLoc, Interval, Lattice, Value};
use sga_ir::{pretty, BinOp, Cmd, Cp, Expr, LVal, Program, RelOp, UnOp, VarId, VarKind};
use sga_utils::Idx;

/// Scans the program for array accesses whose offset may escape the block.
pub fn check_overruns(program: &Program, result: &IntervalResult) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (pid, proc) in program.procs.iter_enumerated() {
        if proc.is_external {
            continue;
        }
        for (nid, node) in proc.nodes.iter_enumerated() {
            let cp = Cp::new(pid, nid);
            let mut ptrs: Vec<VarId> = Vec::new();
            collect_deref_ptrs(&node.cmd, &mut ptrs);
            for ptr in ptrs {
                // The pointer's value at the access: its value in the input
                // states — approximate with its reaching definitions' join
                // over all stored states that bind it at this point's
                // predecessors; the definition point's own state is exact
                // for temps (which array accesses are lowered through).
                let v = value_before(program, result, cp, ptr);
                for (loc, info) in v.arr.iter() {
                    if info.offset.is_bottom() || info.size.is_bottom() {
                        continue;
                    }
                    let max_index = match info.size.lo() {
                        Some(Bound::Int(s)) => Interval::range(0, (s - 1).max(0)),
                        _ => Interval::top(),
                    };
                    if !info.offset.le(&max_index) {
                        let definite = info.offset.meet(&max_index).is_bottom();
                        let alloc = match loc {
                            AbsLoc::Alloc(site) => {
                                Some((site.0.proc.index() as u32, site.0.node.index() as u32))
                            }
                            _ => None,
                        };
                        diags.push(Diagnostic::new(
                            DiagKind::BufferOverrun,
                            cp,
                            node.line,
                            &proc.name,
                            Some(ptr),
                            &program.vars[ptr].name,
                            definite,
                            Evidence::Overrun {
                                offset: info.offset.to_string(),
                                size: info.size.to_string(),
                                block: format!("{loc:?}"),
                                alloc,
                            },
                        ));
                    }
                }
            }
        }
    }
    diags.sort_by_key(|d| (d.line, d.cp));
    diags
}

/// Scans for dereferences of potentially-null pointers.
pub fn check_null_derefs(program: &Program, result: &IntervalResult) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (pid, proc) in program.procs.iter_enumerated() {
        if proc.is_external {
            continue;
        }
        for (nid, node) in proc.nodes.iter_enumerated() {
            let cp = Cp::new(pid, nid);
            let mut ptrs: Vec<VarId> = Vec::new();
            collect_deref_ptrs(&node.cmd, &mut ptrs);
            for ptr in ptrs {
                let v = value_before(program, result, cp, ptr);
                let has_targets = !v.ptr.is_empty() || !v.arr.is_empty();
                if !v.itv.contains(0) {
                    continue;
                }
                diags.push(Diagnostic::new(
                    DiagKind::NullDeref,
                    cp,
                    node.line,
                    &proc.name,
                    Some(ptr),
                    &program.vars[ptr].name,
                    !has_targets && v.itv.as_const() == Some(0),
                    Evidence::Null {
                        value: v.itv.to_string(),
                    },
                ));
            }
        }
    }
    diags.sort_by_key(|d| (d.line, d.cp));
    diags
}

/// Scans for `/` and `%` whose divisor's interval contains zero.
pub fn check_div_by_zero(program: &Program, result: &IntervalResult) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (pid, proc) in program.procs.iter_enumerated() {
        if proc.is_external {
            continue;
        }
        for (nid, node) in proc.nodes.iter_enumerated() {
            let cp = Cp::new(pid, nid);
            let mut divisors: Vec<&Expr> = Vec::new();
            collect_divisors_cmd(&node.cmd, &mut divisors);
            for (nth, d) in divisors.into_iter().enumerate() {
                let itv = eval_itv_before(program, result, cp, d);
                if !itv.contains(0) {
                    continue;
                }
                let (var, subject) = match d {
                    Expr::Var(x) => (Some(*x), program.vars[*x].name.clone()),
                    _ => (None, pretty::expr(program, d)),
                };
                diags.push(Diagnostic::new(
                    DiagKind::DivByZero,
                    cp,
                    node.line,
                    &proc.name,
                    var,
                    subject,
                    itv.as_const() == Some(0),
                    Evidence::DivByZero {
                        divisor: itv.to_string(),
                        nth: nth as u32,
                    },
                ));
            }
        }
    }
    diags.sort_by_key(|d| (d.line, d.cp));
    diags
}

/// Scans for reads of local scalars no assignment in the whole program
/// ever initializes. The fact source is the pre-analysis' global invariant
/// `T̂`: it over-approximates every binding the program can create, so a
/// local unbound in `T̂` has no initializing write on *any* path — such
/// reads are definite.
pub fn check_uninit_reads(program: &Program, pre: &PreAnalysis) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for (pid, proc) in program.procs.iter_enumerated() {
        if proc.is_external {
            continue;
        }
        for (nid, node) in proc.nodes.iter_enumerated() {
            let cp = Cp::new(pid, nid);
            let mut reads: Vec<VarId> = Vec::new();
            collect_var_reads(&node.cmd, &mut reads);
            reads.sort_unstable();
            reads.dedup();
            for x in reads {
                let info = &program.vars[x];
                // Globals are zero-initialized, params are bound by calls,
                // temps and return slots are synthetic single-assignment.
                if !matches!(info.kind, VarKind::Local(owner) if owner == pid) {
                    continue;
                }
                // An address-taken local may be written through pointers the
                // cheap syntactic argument below cannot see.
                if info.address_taken {
                    continue;
                }
                if pre
                    .state
                    .get_ref(&AbsLoc::Var(x))
                    .is_some_and(|v| !v.is_bottom())
                {
                    continue;
                }
                diags.push(Diagnostic::new(
                    DiagKind::UninitRead,
                    cp,
                    node.line,
                    &proc.name,
                    Some(x),
                    &info.name,
                    true,
                    Evidence::Uninit,
                ));
            }
        }
    }
    diags.sort_by_key(|d| (d.line, d.cp));
    diags
}

/// Runs every checker, orders the findings canonically and assigns the
/// stable content fingerprints.
pub fn check_all(program: &Program, result: &IntervalResult, pre: &PreAnalysis) -> Vec<Diagnostic> {
    let mut diags = check_overruns(program, result);
    diags.extend(check_null_derefs(program, result));
    diags.extend(check_div_by_zero(program, result));
    diags.extend(check_uninit_reads(program, pre));
    sga_diag::sort_canonical(&mut diags);
    sga_diag::assign_fingerprints(&mut diags);
    diags
}

/// The value of `ptr` flowing into `cp`: join over the post-states of its
/// CFG predecessors (dense) or of its recorded definitions (sparse).
pub(crate) fn value_before(
    program: &Program,
    result: &IntervalResult,
    cp: Cp,
    ptr: VarId,
) -> Value {
    let l = AbsLoc::Var(ptr);
    let proc = &program.procs[cp.proc];
    let mut acc = Value::bot();
    for &p in proc.preds_of(cp.node) {
        acc = acc.join(&result.value_at(Cp::new(cp.proc, p), &l));
    }
    if acc.is_bottom() {
        // Sparse results may not bind the pointer at the predecessor; fall
        // back to the join over the points that bind it. For a procedure's
        // own locals (and temps/return slots) only the owning procedure's
        // points can legitimately bind the location — other procedures'
        // states carry relay/bypass copies from unrelated call contexts,
        // and joining those manufactures cross-procedure false alarms.
        // Params and globals keep the program-wide join: their bindings
        // genuinely live at call points (resp. anywhere), and the join is
        // the context-insensitive value.
        let scoped = matches!(
            program.vars[ptr].kind,
            VarKind::Local(owner) | VarKind::Temp(owner) | VarKind::Return(owner)
                if owner == cp.proc
        );
        for (point, s) in result.values.iter() {
            if scoped && point.proc != cp.proc {
                continue;
            }
            if let Some(v) = s.get_ref(&l) {
                acc = acc.join(v);
            }
        }
    }
    acc
}

/// Interval of a unary operator applied to an operand interval.
fn unop_itv(op: UnOp, v: &Interval) -> Interval {
    match op {
        UnOp::Neg => v.neg(),
        // `!x` is exactly `x == 0`.
        UnOp::Not => v.cmp_result(RelOp::Eq, &Interval::constant(0)),
        // Two's complement: `~x = -(x+1)`, exact on intervals.
        UnOp::BitNot => v.add(&Interval::constant(1)).neg(),
    }
}

/// Evaluates a pure expression to an interval against the before-state at
/// `cp`, via [`value_before`] lookups. Pointer-valued subexpressions and
/// unmodeled operators go to ⊤.
fn eval_itv_before(program: &Program, result: &IntervalResult, cp: Cp, e: &Expr) -> Interval {
    match e {
        Expr::Const(n) => Interval::constant(*n),
        Expr::Var(x) => {
            let v = value_before(program, result, cp, *x);
            if !v.ptr.is_empty() || !v.arr.is_empty() || !v.procs.is_empty() {
                return Interval::top();
            }
            v.itv
        }
        Expr::Unop(op, a) => unop_itv(*op, &eval_itv_before(program, result, cp, a)),
        Expr::Binop(op, a, b) => {
            let ia = eval_itv_before(program, result, cp, a);
            let ib = eval_itv_before(program, result, cp, b);
            match op {
                BinOp::Add => ia.add(&ib),
                BinOp::Sub => ia.sub(&ib),
                BinOp::Mul => ia.mul(&ib),
                BinOp::Div => ia.div(&ib),
                BinOp::Mod => ia.rem(&ib),
                BinOp::Cmp(r) => ia.cmp_result(*r, &ib),
                BinOp::And | BinOp::Or => {
                    if ia.is_bottom() || ib.is_bottom() {
                        Interval::Bot
                    } else {
                        Interval::range(0, 1)
                    }
                }
                BinOp::Bits => {
                    if ia.is_bottom() || ib.is_bottom() {
                        Interval::Bot
                    } else {
                        Interval::top()
                    }
                }
            }
        }
        Expr::Unknown => Interval::top(),
        // Loads and address constants: no numeric approximation here.
        _ => Interval::top(),
    }
}

fn collect_expr_ptrs(e: &Expr, out: &mut Vec<VarId>) {
    match e {
        Expr::Deref(inner) | Expr::DerefField(inner, _) => {
            if let Expr::Var(v) = &**inner {
                out.push(*v);
            }
            collect_expr_ptrs(inner, out);
        }
        Expr::Binop(_, a, b) => {
            collect_expr_ptrs(a, out);
            collect_expr_ptrs(b, out);
        }
        Expr::Unop(_, a) => collect_expr_ptrs(a, out),
        _ => {}
    }
}

fn collect_deref_ptrs(cmd: &Cmd, out: &mut Vec<VarId>) {
    match cmd {
        Cmd::Assign(lv, e) | Cmd::Alloc(lv, e) => {
            if let LVal::Deref(v) | LVal::DerefField(v, _) = lv {
                out.push(*v);
            }
            collect_expr_ptrs(e, out);
        }
        Cmd::Assume(c) => {
            collect_expr_ptrs(&c.lhs, out);
            collect_expr_ptrs(&c.rhs, out);
        }
        Cmd::Call { ret, args, .. } => {
            if let Some(LVal::Deref(v) | LVal::DerefField(v, _)) = ret {
                out.push(*v);
            }
            for a in args {
                collect_expr_ptrs(a, out);
            }
        }
        Cmd::Return(Some(e)) => collect_expr_ptrs(e, out),
        _ => {}
    }
}

fn collect_divisors_expr<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
    match e {
        Expr::Binop(op, a, b) => {
            collect_divisors_expr(a, out);
            collect_divisors_expr(b, out);
            if matches!(op, BinOp::Div | BinOp::Mod) {
                out.push(b);
            }
        }
        Expr::Unop(_, a) | Expr::Deref(a) | Expr::DerefField(a, _) => collect_divisors_expr(a, out),
        _ => {}
    }
}

pub(crate) fn collect_divisors_cmd<'a>(cmd: &'a Cmd, out: &mut Vec<&'a Expr>) {
    match cmd {
        Cmd::Assign(_, e) | Cmd::Alloc(_, e) => collect_divisors_expr(e, out),
        Cmd::Assume(c) => {
            collect_divisors_expr(&c.lhs, out);
            collect_divisors_expr(&c.rhs, out);
        }
        Cmd::Call { args, .. } => {
            for a in args {
                collect_divisors_expr(a, out);
            }
        }
        Cmd::Return(Some(e)) => collect_divisors_expr(e, out),
        _ => {}
    }
}

fn collect_var_reads_expr(e: &Expr, out: &mut Vec<VarId>) {
    match e {
        Expr::Var(v) => out.push(*v),
        Expr::Deref(a) | Expr::DerefField(a, _) => collect_var_reads_expr(a, out),
        Expr::Binop(_, a, b) => {
            collect_var_reads_expr(a, out);
            collect_var_reads_expr(b, out);
        }
        Expr::Unop(_, a) => collect_var_reads_expr(a, out),
        // `x.f` reads the field location, `&x` reads no value.
        _ => {}
    }
}

fn collect_var_reads(cmd: &Cmd, out: &mut Vec<VarId>) {
    match cmd {
        Cmd::Assign(lv, e) | Cmd::Alloc(lv, e) => {
            if let LVal::Deref(v) | LVal::DerefField(v, _) = lv {
                out.push(*v);
            }
            collect_var_reads_expr(e, out);
        }
        Cmd::Assume(c) => {
            collect_var_reads_expr(&c.lhs, out);
            collect_var_reads_expr(&c.rhs, out);
        }
        Cmd::Call { ret, args, .. } => {
            if let Some(LVal::Deref(v) | LVal::DerefField(v, _)) = ret {
                out.push(*v);
            }
            for a in args {
                collect_var_reads_expr(a, out);
            }
        }
        Cmd::Return(Some(e)) => collect_var_reads_expr(e, out),
        _ => {}
    }
}

/// Reports `assume` points whose condition is provably never true — dead
/// branches (`if (x) …` where the analysis bounds `x` away from the
/// condition). A development-time client: dead guards often flag logic
/// errors or stale feature checks.
pub fn check_dead_branches(program: &Program, result: &IntervalResult) -> Vec<Cp> {
    let mut dead = Vec::new();
    for (pid, proc) in program.procs.iter_enumerated() {
        if proc.is_external {
            continue;
        }
        for (nid, node) in proc.nodes.iter_enumerated() {
            let Cmd::Assume(cond) = &node.cmd else {
                continue;
            };
            let cp = Cp::new(pid, nid);
            match &cond.lhs {
                // The refined value of a directly-mentioned location: ⊥
                // numeric with a non-⊥ input means the condition excluded
                // every value.
                Expr::Var(x) => {
                    let l = AbsLoc::Var(*x);
                    let after = result.value_at(cp, &l);
                    let before = value_before(program, result, cp, *x);
                    if after.itv.is_bottom()
                        && !before.itv.is_bottom()
                        && before.ptr.is_empty()
                        && before.arr.is_empty()
                    {
                        dead.push(cp);
                    }
                }
                // A negated variable (`if (-x)`, `if (~x)`): the semantics
                // does not refine `x` through the operator, so the
                // post-state test above never fires. Decide feasibility
                // directly: apply the operator to the input interval and
                // check the relation can hold at all.
                Expr::Unop(op, inner) => {
                    let Expr::Var(x) = &**inner else { continue };
                    let before = value_before(program, result, cp, *x);
                    if before.itv.is_bottom() || !before.ptr.is_empty() || !before.arr.is_empty() {
                        continue;
                    }
                    let lhs = unop_itv(*op, &before.itv);
                    let rhs = eval_itv_before(program, result, cp, &cond.rhs);
                    if rhs.is_bottom() {
                        continue;
                    }
                    if lhs.filter(cond.op, &rhs).is_bottom() {
                        dead.push(cp);
                    }
                }
                _ => {}
            }
        }
    }
    dead.sort();
    dead
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{analyze, Engine};
    use sga_cfront::parse;

    #[test]
    fn in_bounds_loop_is_clean() {
        let p = parse(
            "int main() {
                int *buf = malloc(10);
                int i = 0;
                while (i < 10) { buf[i] = 1; i = i + 1; }
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_overruns(&p, &r);
        assert!(alarms.is_empty(), "false alarms: {alarms:?}");
    }

    #[test]
    fn off_by_one_is_reported() {
        let p = parse(
            "int main() {
                int *buf = malloc(10);
                int i = 0;
                while (i <= 10) { buf[i] = 1; i = i + 1; }
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_overruns(&p, &r);
        assert!(!alarms.is_empty(), "off-by-one missed");
    }

    #[test]
    fn definite_overrun_flagged() {
        let p = parse(
            "int main() {
                int *buf = malloc(4);
                buf[9] = 1;
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_overruns(&p, &r);
        assert!(alarms.iter().any(|a| a.definite), "{alarms:?}");
    }

    #[test]
    fn overrun_evidence_records_alloc_site() {
        let p = parse(
            "int main() {
                int *buf = malloc(4);
                buf[9] = 1;
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_overruns(&p, &r);
        assert!(alarms
            .iter()
            .all(|a| matches!(&a.evidence, Evidence::Overrun { alloc: Some(_), .. })));
    }

    #[test]
    fn engines_agree_on_alarm_count() {
        let src = "int main(int n) {
                int *buf = malloc(8);
                int i = 0;
                while (i < n) { buf[i] = i; i = i + 1; }
                buf[7] = 0;
                return 0;
             }";
        let p = parse(src).unwrap();
        let base = check_overruns(&p, &analyze(&p, Engine::Base)).len();
        let sparse = check_overruns(&p, &analyze(&p, Engine::Sparse)).len();
        assert_eq!(base, sparse, "alarm counts must match between engines");
    }

    #[test]
    fn value_before_fallback_stays_in_procedure() {
        // Both procedures declare a local pointer `p`; only main's may be
        // null. The fallback used to join every binding of a location
        // program-wide, which can leak another context's value (relay and
        // bypass states bind locals at other procedures' points) into an
        // unrelated procedure's query.
        let src = "int g;
             int set(int c) {
                int *p = &g;
                if (c) { g = 1; }
                *p = 2;
                return 0;
             }
             int main(int c) {
                int *p = 0;
                if (c) { p = &g; *p = 3; }
                set(c);
                return 0;
             }";
        let p = parse(src).unwrap();
        for engine in [Engine::Base, Engine::Sparse] {
            let r = analyze(&p, engine);
            let alarms = check_null_derefs(&p, &r);
            assert!(
                alarms.iter().all(|a| a.proc_name == "main"),
                "{engine:?}: `set`'s p is always &g, {alarms:?}"
            );
        }
    }

    #[test]
    fn param_fallback_still_sees_caller_bindings() {
        // A parameter's bindings live at the *call* points in callers; the
        // procedure-scoped fallback must not apply to params, or the sparse
        // engine would silently drop this (real) null dereference that the
        // Base engine reports.
        let src = "int g;
             int h(int *q) { *q = 1; return 0; }
             int main(int c) {
                if (c) { h(&g); } else { h(0); }
                return 0;
             }";
        let p = parse(src).unwrap();
        let base = check_null_derefs(&p, &analyze(&p, Engine::Base));
        let sparse = check_null_derefs(&p, &analyze(&p, Engine::Sparse));
        assert_eq!(base.len(), 1, "{base:?}");
        assert_eq!(
            base.len(),
            sparse.len(),
            "engines must agree: {base:?} vs {sparse:?}"
        );
    }
}

#[cfg(test)]
mod null_tests {
    use super::*;
    use crate::interval::{analyze, Engine};
    use sga_cfront::parse;

    #[test]
    fn definite_null_deref() {
        let p = parse("int main() { int *p = 0; *p = 1; return 0; }").unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_null_derefs(&p, &r);
        assert!(alarms.iter().any(|a| a.definite), "{alarms:?}");
    }

    #[test]
    fn possible_null_after_join() {
        let p = parse(
            "int g;
             int main(int c) {
                int *p = 0;
                if (c) p = &g;
                *p = 1;
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_null_derefs(&p, &r);
        assert_eq!(alarms.len(), 1);
        assert!(!alarms[0].definite, "join with &g makes it only possible");
    }

    #[test]
    fn guarded_deref_is_clean() {
        let p = parse(
            "int g;
             int main(int c) {
                int *p = 0;
                if (c) p = &g;
                if (p != 0) { *p = 1; }
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_null_derefs(&p, &r);
        // The null-comparison refinement prunes 0 from p's interval
        // component inside the guard.
        assert!(alarms.is_empty(), "{alarms:?}");
    }

    #[test]
    fn malloc_result_not_null_flagged() {
        let p = parse("int main() { int *p = malloc(4); *p = 1; return 0; }").unwrap();
        let r = analyze(&p, Engine::Sparse);
        assert!(check_null_derefs(&p, &r).is_empty());
    }

    #[test]
    fn engines_agree_on_null_derefs() {
        let src = "int g;
             int main(int c) {
                int *p = 0;
                int *q = 0;
                if (c) p = &g;
                *p = 1;
                if (q != 0) { *q = 2; }
                return 0;
             }";
        let p = parse(src).unwrap();
        let base = check_null_derefs(&p, &analyze(&p, Engine::Base));
        let sparse = check_null_derefs(&p, &analyze(&p, Engine::Sparse));
        assert_eq!(base.len(), sparse.len(), "{base:?} vs {sparse:?}");
    }
}

#[cfg(test)]
mod div_tests {
    use super::*;
    use crate::interval::{analyze, Engine};
    use sga_cfront::parse;

    #[test]
    fn definite_div_by_zero() {
        let p = parse("int main(int n) { int z = 0; return n / z; }").unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_div_by_zero(&p, &r);
        assert_eq!(alarms.len(), 1, "{alarms:?}");
        assert!(alarms[0].definite);
    }

    #[test]
    fn possible_div_by_unbounded() {
        let p = parse("int main(int n) { return 100 / n; }").unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_div_by_zero(&p, &r);
        assert_eq!(alarms.len(), 1, "{alarms:?}");
        assert!(!alarms[0].definite);
    }

    #[test]
    fn guarded_divisor_is_clean() {
        let p = parse("int main(int n) { if (n > 0) { return 100 / n; } return 0; }").unwrap();
        let r = analyze(&p, Engine::Sparse);
        let alarms = check_div_by_zero(&p, &r);
        assert!(alarms.is_empty(), "{alarms:?}");
    }

    #[test]
    fn nonzero_constant_divisor_is_clean() {
        let p = parse("int main(int n) { return n / 4 + n % 8; }").unwrap();
        let r = analyze(&p, Engine::Sparse);
        assert!(check_div_by_zero(&p, &r).is_empty());
    }

    #[test]
    fn modulo_divisor_checked() {
        let p = parse("int main(int n, int m) { return n % m; }").unwrap();
        let r = analyze(&p, Engine::Sparse);
        assert_eq!(check_div_by_zero(&p, &r).len(), 1);
    }
}

#[cfg(test)]
mod uninit_tests {
    use super::*;
    use crate::interval::{analyze, Engine};
    use crate::preanalysis;
    use sga_cfront::parse;

    fn uninit(src: &str) -> Vec<Diagnostic> {
        let p = parse(src).unwrap();
        let pre = preanalysis::run(&p);
        check_uninit_reads(&p, &pre)
    }

    #[test]
    fn never_assigned_local_is_flagged() {
        let alarms = uninit("int main() { int x; return x; }");
        assert_eq!(alarms.len(), 1, "{alarms:?}");
        assert!(alarms[0].definite);
        assert_eq!(alarms[0].subject, "x");
    }

    #[test]
    fn assigned_local_is_clean() {
        assert!(uninit("int main() { int x; x = 1; return x; }").is_empty());
    }

    #[test]
    fn conditionally_assigned_local_is_not_flagged() {
        // T̂ is flow-insensitive: one assignment anywhere binds the local,
        // so only *never*-initialized locals are reported (no false
        // positives on partial paths, by construction).
        assert!(uninit("int main(int c) { int x; if (c) { x = 1; } return x; }").is_empty());
    }

    #[test]
    fn globals_and_params_are_exempt() {
        assert!(uninit("int g; int main(int c) { return g + c; }").is_empty());
    }

    #[test]
    fn uninit_findings_are_in_check_all() {
        let p = parse("int main() { int x; return x / 2; }").unwrap();
        let pre = preanalysis::run(&p);
        let r = analyze(&p, Engine::Sparse);
        let all = check_all(&p, &r, &pre);
        assert!(
            all.iter().any(|d| d.kind == DiagKind::UninitRead),
            "{all:?}"
        );
        assert!(all.iter().all(|d| d.fingerprint != 0));
    }
}

#[cfg(test)]
mod dead_branch_tests {
    use super::*;
    use crate::interval::{analyze, Engine};
    use sga_cfront::parse;

    #[test]
    fn impossible_guard_is_dead() {
        let p = parse(
            "int main() {
                int x = 3;
                if (x > 10) { x = 0; }
                return x;
             }",
        )
        .unwrap();
        for engine in [Engine::Base, Engine::Sparse] {
            let r = analyze(&p, engine);
            let dead = check_dead_branches(&p, &r);
            assert_eq!(dead.len(), 1, "{engine:?}: {dead:?}");
        }
    }

    #[test]
    fn feasible_guards_are_live() {
        let p = parse(
            "int main(int c) {
                int x = c;
                if (x > 10) { x = 0; }
                if (x < 0) { x = 1; }
                return x;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        assert!(check_dead_branches(&p, &r).is_empty());
    }

    #[test]
    fn negated_guard_on_nonzero_var_is_dead() {
        // `if (-x)` with x = 3: the true branch (`-x != 0`) is live, the
        // false branch (`-x == 0`) is dead. Nothing refines x through the
        // negation, so only the Unop-aware feasibility test can see it.
        let p = parse(
            "int main() {
                int x = 3;
                if (-x) { x = 1; }
                return x;
             }",
        )
        .unwrap();
        for engine in [Engine::Base, Engine::Sparse] {
            let r = analyze(&p, engine);
            let dead = check_dead_branches(&p, &r);
            assert_eq!(dead.len(), 1, "{engine:?}: {dead:?}");
        }
    }

    #[test]
    fn negated_guard_on_unknown_var_is_live() {
        let p = parse(
            "int main(int c) {
                if (-c) { c = 1; }
                return c;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        assert!(check_dead_branches(&p, &r).is_empty());
    }

    #[test]
    fn engines_agree_on_dead_branches() {
        let src = "int main(int c) {
                int x = 3;
                int y = c;
                if (x > 10) { x = 0; }
                if (-x) { y = 1; }
                if (y < 100000) { y = 2; }
                return x + y;
             }";
        let p = parse(src).unwrap();
        let base = check_dead_branches(&p, &analyze(&p, Engine::Base));
        let sparse = check_dead_branches(&p, &analyze(&p, Engine::Sparse));
        assert_eq!(base, sparse, "engines must agree on dead branches");
    }
}
