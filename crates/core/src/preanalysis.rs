//! The flow-insensitive pre-analysis of §3.2.
//!
//! "The abstraction ignores the control flows of programs and computes a
//! single global invariant." Its result `T̂` is what the safe D̂/Û
//! approximations read points-to information from, and — per §5 — what
//! resolves function pointers to fix the call graph for every engine.
//!
//! The pointer component behaves like inclusion-based (Andersen-style)
//! points-to analysis, combined with the numeric component, matching the
//! paper's footnote 3.

use crate::semantics::{self, eval};
use sga_domains::{AbsLoc, Lattice, State, Value};
use sga_ir::callgraph::CallGraph;
use sga_ir::{Callee, Cmd, Cp, Program};

/// The pre-analysis result.
#[derive(Debug)]
pub struct PreAnalysis {
    /// The single global invariant `T̂` (used as `T̂(c)` for every `c`).
    pub state: State,
    /// Call graph with function pointers resolved against `T̂`.
    pub callgraph: CallGraph,
    /// Number of global rounds until the fixpoint.
    pub rounds: usize,
}

impl PreAnalysis {
    /// Resolved targets of the call at `cp` (empty for pure externals).
    pub fn call_targets(&self, cp: Cp) -> &[sga_ir::ProcId] {
        self.callgraph
            .site_targets
            .get(&cp)
            .map_or(&[], Vec::as_slice)
    }
}

/// Runs the flow-insensitive pre-analysis to its fixpoint.
pub fn run(program: &Program) -> PreAnalysis {
    let mut state = seed(program);
    let mut rounds = 0usize;
    loop {
        rounds += 1;
        // Each command contributes only its (weakly updated) delta —
        // evaluated against the previous round's state — instead of a full
        // state join; flow-insensitivity makes the two equivalent.
        let mut next = state.clone();
        let weak = |next: &mut State, l: AbsLoc, v: &Value| {
            *next = next.weak_set(l, v);
        };
        for (pid, proc) in program.procs.iter_enumerated() {
            if proc.is_external {
                continue;
            }
            for (nid, node) in proc.nodes.iter_enumerated() {
                let cp = Cp::new(pid, nid);
                match &node.cmd {
                    Cmd::Skip | Cmd::Assume(_) => {
                        // Refinement can only shrink values; flow-insensitive
                        // joining makes it a no-op, so skip the work.
                    }
                    Cmd::Assign(lv, e) => {
                        let v = semantics::eval(program, e, &state);
                        let (targets, _) = semantics::lval_targets(program, lv, &state);
                        for &l in &targets {
                            weak(&mut next, l, &v);
                        }
                    }
                    Cmd::Alloc(lv, size) => {
                        let sz = semantics::eval(program, size, &state).itv;
                        let site = sga_domains::locs::AllocSite(cp);
                        let v = Value::of_arr(sga_domains::array::ArrayBlk::alloc(
                            AbsLoc::Alloc(site),
                            sz,
                        ));
                        let (targets, _) = semantics::lval_targets(program, lv, &state);
                        for &l in &targets {
                            weak(&mut next, l, &v);
                        }
                    }
                    Cmd::Return(e) => {
                        let v = match e {
                            Some(e) => semantics::eval(program, e, &state),
                            None => Value::bot(),
                        };
                        weak(&mut next, AbsLoc::Var(proc.ret_var), &v);
                    }
                    Cmd::Call { ret, callee, args } => {
                        let targets = resolve_targets(program, callee, &state);
                        let mut ret_val: Option<Value> = None;
                        let mut any_internal = false;
                        for &t in &targets {
                            let callee_proc = &program.procs[t];
                            if callee_proc.is_external {
                                continue;
                            }
                            any_internal = true;
                            for (i, &p) in callee_proc.params.iter().enumerate() {
                                let v = match args.get(i) {
                                    Some(a) => semantics::eval(program, a, &state),
                                    None => Value::unknown_int(),
                                };
                                weak(&mut next, AbsLoc::Var(p), &v);
                            }
                            let rv = state.get(&AbsLoc::Var(callee_proc.ret_var));
                            ret_val = Some(match ret_val {
                                Some(acc) => acc.join(&rv),
                                None => rv,
                            });
                        }
                        if !any_internal {
                            ret_val = Some(match ret_val {
                                Some(acc) => acc.join(&Value::unknown_int()),
                                None => Value::unknown_int(),
                            });
                        }
                        if let (Some(lv), Some(v)) = (ret, ret_val) {
                            let (targets, _) = semantics::lval_targets(program, lv, &state);
                            for &l in &targets {
                                weak(&mut next, l, &v);
                            }
                        }
                    }
                }
            }
        }
        // Plain joins for two rounds (cheap precision), widening afterwards
        // to force convergence of the numeric component.
        let merged = if rounds <= 2 {
            state.join(&next)
        } else {
            state.widen(&next)
        };
        if merged == state {
            break;
        }
        state = merged;
    }
    let callgraph = CallGraph::build(program, |cp| {
        let Cmd::Call { callee, .. } = program.cmd(cp) else {
            return Vec::new();
        };
        resolve_targets(program, callee, &state)
    });
    PreAnalysis {
        state,
        callgraph,
        rounds,
    }
}

/// Call targets under state `s`: syntactic for direct calls, the
/// function-pointer component of the callee expression otherwise.
pub fn resolve_targets(program: &Program, callee: &Callee, s: &State) -> Vec<sga_ir::ProcId> {
    match callee {
        Callee::Direct(p) => vec![*p],
        Callee::Indirect(e) => {
            let v = eval(program, e, s);
            let mut out: Vec<sga_ir::ProcId> = v
                .procs
                .iter()
                .filter_map(|l| match l {
                    AbsLoc::Proc(p) => Some(*p),
                    _ => None,
                })
                .collect();
            out.sort_unstable();
            out.dedup();
            out
        }
    }
}

/// Coarsens a pre-analysis state to the *semi-sparse* regime of
/// Hardekopf & Lin [POPL 2009], which §3.2 shows is a restricted instance
/// of the framework: "pre-analysis which computes a fixpoint T̂ such that
/// T̂(c)(x).P̂ = L̂ for all x that are not top-level variables". Address-taken
/// variables and heap cells get ⊤ values (they may point anywhere), so only
/// top-level variables are treated sparsely; the result is still a safe
/// approximation (strictly bigger D̂/Û), hence precision is still preserved.
pub fn coarsen_semi_sparse(program: &Program, precise: &State) -> State {
    use sga_domains::array::ArrayBlk;
    use sga_domains::{Interval, LocSet};
    // The universe of addressable locations.
    let mut universe: Vec<AbsLoc> = Vec::new();
    for (v, info) in program.vars.iter_enumerated() {
        if info.address_taken {
            universe.push(AbsLoc::Var(v));
        }
    }
    for (l, _) in precise.iter() {
        if !matches!(l, AbsLoc::Var(_)) {
            universe.push(*l);
        }
    }
    let all: LocSet = universe.iter().copied().collect();
    let arr_all: ArrayBlk = universe
        .iter()
        .filter(|l| l.is_summary())
        .map(|&l| {
            (
                l,
                sga_domains::array::ArrInfo {
                    offset: Interval::top(),
                    size: Interval::top(),
                },
            )
        })
        .collect();
    let top_value = Value {
        itv: Interval::top(),
        ptr: all.clone(),
        arr: arr_all,
        procs: LocSet::empty(),
    };
    let mut out = precise.clone();
    // Every non-top-level location's value becomes ⊤-ish.
    for (l, _) in precise.iter() {
        let coarse = match l {
            AbsLoc::Var(v) if !program.vars[*v].address_taken => continue,
            _ => top_value.clone(),
        };
        out = out.set(*l, coarse);
    }
    // Address-taken variables never written still may be read through
    // pointers: bind them too.
    for l in &universe {
        if out.get_ref(l).is_none() {
            out = out.set(*l, top_value.clone());
        }
    }
    out
}

/// Initial state: `main`'s parameters (argc/argv) are unknown.
fn seed(program: &Program) -> State {
    let mut s = State::new();
    for &p in &program.procs[program.main].params {
        s = s.set(AbsLoc::Var(p), Value::unknown_int());
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use sga_cfront::parse;
    use sga_domains::Interval;
    use sga_ir::VarId;

    fn var(program: &Program, name: &str) -> VarId {
        program
            .vars
            .iter_enumerated()
            .find(|(_, v)| v.name == name)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    #[test]
    fn computes_global_pointer_facts() {
        let p = parse(
            "int x; int y; int *p;
             int main() { p = &x; if (x) p = &y; *p = 3; return 0; }",
        )
        .unwrap();
        let pre = run(&p);
        let pv = pre.state.get(&AbsLoc::Var(var(&p, "p")));
        assert!(pv.ptr.contains(&AbsLoc::Var(var(&p, "x"))));
        assert!(pv.ptr.contains(&AbsLoc::Var(var(&p, "y"))));
        // *p = 3 reaches both x and y (weakly, via join).
        assert!(Interval::constant(3).le(&pre.state.get(&AbsLoc::Var(var(&p, "x"))).itv));
    }

    #[test]
    fn widening_terminates_counting_loop() {
        let p =
            parse("int main() { int i = 0; while (i < 1000000) i = i + 1; return i; }").unwrap();
        let pre = run(&p);
        assert!(pre.rounds < 20, "diverged: {} rounds", pre.rounds);
        let iv = pre.state.get(&AbsLoc::Var(var(&p, "i"))).itv;
        assert!(
            Interval::constant(500).le(&iv),
            "flow-insensitively i is unbounded-ish: {iv}"
        );
    }

    #[test]
    fn resolves_function_pointers() {
        let p = parse(
            "int f(int a) { return a; }
             int g(int a) { return a + 1; }
             int main(int c) {
                int (*fp)(int);
                if (c) fp = f; else fp = g;
                return fp(1);
             }",
        )
        .unwrap();
        let pre = run(&p);
        let f = p.proc_by_name("f").unwrap();
        let g = p.proc_by_name("g").unwrap();
        let main = p.proc_by_name("main").unwrap();
        assert!(pre.callgraph.callees[main].contains(&f));
        assert!(pre.callgraph.callees[main].contains(&g));
        // And the argument flowed into both callees' params.
        let fa = p.procs[f].params[0];
        assert!(Interval::constant(1).le(&pre.state.get(&AbsLoc::Var(fa)).itv));
    }

    #[test]
    fn interprocedural_return_flow() {
        let p = parse(
            "int id(int a) { return a; }
             int main() { int r = id(42); return r; }",
        )
        .unwrap();
        let pre = run(&p);
        let r = var(&p, "r");
        assert!(Interval::constant(42).le(&pre.state.get(&AbsLoc::Var(r)).itv));
    }

    #[test]
    fn external_calls_return_top() {
        let p = parse("int mystery(int); int main() { int r = mystery(3); return r; }").unwrap();
        let pre = run(&p);
        let r = var(&p, "r");
        assert_eq!(pre.state.get(&AbsLoc::Var(r)).itv, Interval::top());
    }
}
