//! Data-dependency generation (§2.6 + §5).
//!
//! Per procedure, a reaching-definitions pass over `D̂`/`Û` — "our notion of
//! data dependencies equals def-use chains with D̂ and Û being treated as
//! must-definitions and must-uses" — produces the intraprocedural edges.
//! Interprocedural edges link the procedure boundary: parameters flow on
//! explicit call-site → entry edges; callee-*used* locations flow from
//! their reaching definitions straight to the entry (the
//! [`DepSource::use_routes`] redirection, which keeps pre-call values apart
//! from returned ones); callee-*defined* locations and the return variable
//! flow back on exit → call-site edges tagged as return flow.
//!
//! The **bypass optimization** then contracts chains through pure relays:
//! "suppose a →l b, b →l c, and that l is not defined nor used in b, then we
//! remove those two dependencies and add a →l c" — applied while it is
//! *beneficial* (never growing the edge set; hub relays stay and forward at
//! run time). Relays are exactly the nodes where `l` appears only in the
//! relay-extended sets, never in the real ones
//! ([`crate::defuse::DefUse::is_real`]).

use crate::defuse::DefUse;
use crate::preanalysis::PreAnalysis;
use sga_ir::{Cmd, Cp, Program};
use sga_utils::graph::{AdjGraph, Scc};
use sga_utils::{BitSet, FxHashMap, FxHashSet, Idx};

/// Options controlling dependency generation.
#[derive(Clone, Copy, Debug)]
pub struct DepGenOptions {
    /// Apply the §5 bypass optimization (on by default; the ablation
    /// harness switches it off).
    pub bypass: bool,
}

impl Default for DepGenOptions {
    fn default() -> Self {
        DepGenOptions { bypass: true }
    }
}

/// Phase statistics for the tables.
#[derive(Clone, Copy, Debug, Default)]
pub struct DepGenStats {
    /// Edges before the bypass optimization.
    pub raw_edges: usize,
    /// Edges after (equals `raw_edges` when bypass is off).
    pub final_edges: usize,
    /// Distinct (from, to, loc) triples — the BDD/set store population.
    pub triples: usize,
}

/// The generated data dependencies.
///
/// Incoming edges are split by how the value arrives: *pre* edges carry
/// ordinary def→use flow; *return* edges carry values coming back from a
/// callee's exit to the call site. The distinction matters to the sparse
/// call transfer: argument expressions must be evaluated against pre-call
/// values only.
#[derive(Debug, Default)]
pub struct DataDeps {
    /// Forward edges: `from → [(loc, to), …]`, deduplicated and sorted.
    pub out: FxHashMap<Cp, Vec<(u32, Cp)>>,
    /// Reverse pre-flow edges: `to → [(loc, from), …]`.
    pub into: FxHashMap<Cp, Vec<(u32, Cp)>>,
    /// Reverse return-flow edges (callee exit → call site).
    pub into_ret: FxHashMap<Cp, Vec<(u32, Cp)>>,
    /// Control points on dependency cycles — the sparse engine's widening
    /// points.
    pub cycle_nodes: FxHashSet<Cp>,
    /// Topological rank of each dependency-graph node (producers before
    /// consumers; cycles share ranks) — the sparse worklist's priority.
    pub topo_rank: FxHashMap<Cp, u32>,
    /// Generation statistics.
    pub stats: DepGenStats,
}

impl DataDeps {
    /// Incoming pre-flow dependencies of `cp`.
    pub fn deps_into(&self, cp: Cp) -> &[(u32, Cp)] {
        self.into.get(&cp).map_or(&[], Vec::as_slice)
    }

    /// Incoming return-flow dependencies of `cp` (call sites only).
    pub fn deps_into_ret(&self, cp: Cp) -> &[(u32, Cp)] {
        self.into_ret.get(&cp).map_or(&[], Vec::as_slice)
    }

    /// Outgoing dependencies of `cp`.
    pub fn deps_out(&self, cp: Cp) -> &[(u32, Cp)] {
        self.out.get(&cp).map_or(&[], Vec::as_slice)
    }

    /// Iterates all `(from, loc, to)` triples.
    pub fn iter(&self) -> impl Iterator<Item = (Cp, u32, Cp)> + '_ {
        self.out
            .iter()
            .flat_map(|(&from, outs)| outs.iter().map(move |&(loc, to)| (from, loc, to)))
    }

    /// Whether `from →loc to` is present (either flavour).
    pub fn has(&self, from: Cp, loc: u32, to: Cp) -> bool {
        self.out
            .get(&from)
            .is_some_and(|v| v.binary_search(&(loc, to)).is_ok())
    }
}

/// What dependency generation needs from an analysis instance: per-point
/// def/use sets as dense location ids, the real/relay distinction, and the
/// explicit interprocedural linking edges. The interval instance's source is
/// [`IntervalDepSource`]; the octagon instance supplies packs.
pub trait DepSource {
    /// `D̂(cp)` as location ids (sorted).
    fn defs(&self, cp: Cp) -> &[u32];
    /// `Û(cp)` as location ids (sorted).
    fn uses(&self, cp: Cp) -> &[u32];
    /// Whether `loc` is a real (non-relay) def or use at `cp`.
    fn is_real(&self, cp: Cp, loc: u32) -> bool;

    /// Where reaching-definition edges for a use of `loc` at `cp` should
    /// land. Most uses consume at the node itself; a call site redirects
    /// callee-used locations to the callee entries so pre-call values flow
    /// in without mixing with returned ones.
    fn use_routes(&self, cp: Cp, loc: u32) -> UseRoutes<'_> {
        let _ = (cp, loc);
        UseRoutes {
            self_edge: true,
            entries: &[],
        }
    }
    /// Emits the interprocedural linking edges `(loc, from, to,
    /// is_return)`; `is_return` marks callee-exit → call-site edges.
    fn inter_edges(&self, sink: &mut dyn FnMut(u32, Cp, Cp, bool));
}

/// Routing of a use's incoming dependency edges (see
/// [`DepSource::use_routes`]).
#[derive(Clone, Copy, Debug)]
pub struct UseRoutes<'a> {
    /// Emit the ordinary `def → use` edge to the node itself.
    pub self_edge: bool,
    /// Additional callee entries that receive `def → entry` edges.
    pub entries: &'a [Cp],
}

/// Generates data dependencies for the interval instance.
pub fn generate(
    program: &Program,
    pre: &PreAnalysis,
    du: &DefUse,
    options: DepGenOptions,
) -> DataDeps {
    let source = IntervalDepSource::new(program, pre, du);
    generate_from(program, &source, options)
}

/// One dependency edge: `(loc, from, to, is_return)`.
pub type DepEdge = (u32, Cp, Cp, bool);

/// Generates data dependencies from any [`DepSource`].
///
/// This is the sequential driver over the staged pieces: per-procedure
/// reaching-definition segments ([`proc_dep_edges`], independent across
/// procedures) merged by [`assemble`], which adds the interprocedural
/// linking edges and runs the bypass contraction. The parallel pipeline
/// calls the pieces itself.
pub fn generate_from<S: DepSource>(
    program: &Program,
    source: &S,
    options: DepGenOptions,
) -> DataDeps {
    let segments: Vec<Vec<DepEdge>> = program
        .procs
        .indices()
        .map(|pid| proc_dep_edges(program, source, pid))
        .collect();
    assemble(source, options, segments)
}

/// Per-procedure dependency segment: the intraprocedural def→use edges of
/// `pid` (already routed — a call site's callee-used locations land on the
/// callee entries). Independent across procedures.
pub fn proc_dep_edges<S: DepSource>(
    program: &Program,
    source: &S,
    pid: sga_ir::ProcId,
) -> Vec<DepEdge> {
    let mut edges = Vec::new();
    if program.procs[pid].is_external {
        return edges;
    }
    intra_proc_edges(program, source, pid, &mut edges);
    edges
}

/// Merges per-procedure segments (pass them in procedure order for
/// determinism), adds the source's interprocedural linking edges, applies
/// the bypass contraction, and computes widening points and ranks.
pub fn assemble<S: DepSource>(
    source: &S,
    options: DepGenOptions,
    segments: Vec<Vec<DepEdge>>,
) -> DataDeps {
    // Raw edges grouped by location id for the bypass pass. The bool marks
    // return-flow edges.
    let mut by_loc: FxHashMap<u32, Vec<(Cp, Cp, bool)>> = FxHashMap::default();
    let mut raw_edges = 0usize;
    for segment in segments {
        for (loc, from, to, is_return) in segment {
            by_loc.entry(loc).or_default().push((from, to, is_return));
            raw_edges += 1;
        }
    }
    source.inter_edges(&mut |loc, from, to, is_return| {
        by_loc.entry(loc).or_default().push((from, to, is_return));
        raw_edges += 1;
    });

    // Bypass optimization per location.
    let mut total_final = 0usize;
    let mut out: FxHashMap<Cp, Vec<(u32, Cp)>> = FxHashMap::default();
    let mut into: FxHashMap<Cp, Vec<(u32, Cp)>> = FxHashMap::default();
    let mut into_ret: FxHashMap<Cp, Vec<(u32, Cp)>> = FxHashMap::default();
    for (loc_id, edges) in &by_loc {
        let final_edges = if options.bypass {
            bypass_contract(source, *loc_id, edges)
        } else {
            edges.clone()
        };
        for (from, to, is_return) in final_edges {
            out.entry(from).or_default().push((*loc_id, to));
            let side = if is_return { &mut into_ret } else { &mut into };
            side.entry(to).or_default().push((*loc_id, from));
        }
    }
    for v in out.values_mut() {
        v.sort_unstable();
        v.dedup();
        total_final += v.len();
    }
    for v in into.values_mut().chain(into_ret.values_mut()) {
        v.sort_unstable();
        v.dedup();
    }

    let (cycle_nodes, topo_rank) = dep_graph_structure(&out);
    // Widening points are the *real* cycle nodes only. Relays on a cycle
    // merely forward joins — they cannot generate an ascending chain, so any
    // infinite ascent passes through a real definition on the same cycle,
    // which widens. Widening at relays is not just redundant: it makes
    // precision depend on how many relay hops survive contraction, so the
    // bypass ablation would change results instead of only edge counts.
    let cycle_nodes = cycle_nodes
        .into_iter()
        .filter(|cp| {
            out.get(cp)
                .is_some_and(|es| es.iter().any(|&(loc, _)| source.is_real(*cp, loc)))
        })
        .collect();
    DataDeps {
        out,
        into,
        into_ret,
        cycle_nodes,
        topo_rank,
        stats: DepGenStats {
            raw_edges,
            final_edges: total_final,
            triples: total_final,
        },
    }
}

/// Reaching-definition pass for one procedure, appending to `sink`.
fn intra_proc_edges<S: DepSource>(
    program: &Program,
    source: &S,
    pid: sga_ir::ProcId,
    sink: &mut Vec<DepEdge>,
) {
    let proc = &program.procs[pid];
    let n = proc.nodes.len();

    // Collect the locations mentioned in this procedure and, per location,
    // its def and use points.
    let mut locs_here: FxHashMap<u32, (Vec<usize>, Vec<usize>)> = FxHashMap::default();
    for (nid, _) in proc.nodes.iter_enumerated() {
        let cp = Cp::new(pid, nid);
        for &id in source.defs(cp) {
            locs_here.entry(id).or_default().0.push(nid.index());
        }
        for &id in source.uses(cp) {
            locs_here.entry(id).or_default().1.push(nid.index());
        }
    }

    let rpo = sga_utils::graph::reverse_postorder(&proc.cfg_view(), proc.entry.index());

    for (&loc_id, (def_points, use_points)) in &locs_here {
        if use_points.is_empty() || def_points.is_empty() {
            continue;
        }
        // Dataflow over def-point indices: in(n) = ⋃ preds out(p);
        // out(n) = {n} if n defines l (must-kill) else in(n).
        let ndefs = def_points.len();
        let def_index: FxHashMap<usize, usize> = def_points
            .iter()
            .enumerate()
            .map(|(i, &d)| (d, i))
            .collect();
        let mut in_sets: Vec<BitSet> = (0..n).map(|_| BitSet::new(ndefs)).collect();
        let mut out_sets: Vec<BitSet> = (0..n).map(|_| BitSet::new(ndefs)).collect();
        // Initialize defs' own out-sets.
        for (i, &d) in def_points.iter().enumerate() {
            out_sets[d].insert(i);
        }
        // Iterate to fixpoint in RPO (loops converge in a few passes).
        let mut changed = true;
        while changed {
            changed = false;
            for &v in &rpo {
                let mut inset = BitSet::new(ndefs);
                for &p in proc.preds_of(sga_ir::NodeId::new(v)) {
                    inset.union_with(&out_sets[p.index()]);
                }
                if inset != in_sets[v] {
                    in_sets[v] = inset.clone();
                    changed = true;
                }
                if !def_index.contains_key(&v) && out_sets[v] != inset {
                    out_sets[v] = inset;
                    changed = true;
                }
            }
        }
        // Emit edges def → use for every def reaching a use, honoring the
        // source's routing (call sites redirect callee-used locations to
        // the callee entries).
        for &u in use_points {
            let ucp = Cp::new(pid, sga_ir::NodeId::new(u));
            let routes = source.use_routes(ucp, loc_id);
            for di in in_sets[u].iter() {
                let d = Cp::new(pid, sga_ir::NodeId::new(def_points[di]));
                if routes.self_edge {
                    sink.push((loc_id, d, ucp, false));
                }
                for &entry in routes.entries {
                    sink.push((loc_id, d, entry, false));
                }
            }
        }
    }
}

/// The interval instance's [`DepSource`]: id-mapped views of [`DefUse`]
/// plus the call-site ↔ callee linking of §5.
pub struct IntervalDepSource<'a> {
    program: &'a Program,
    pre: &'a PreAnalysis,
    du: &'a DefUse,
    def_ids: FxHashMap<Cp, Vec<u32>>,
    use_ids: FxHashMap<Cp, Vec<u32>>,
    /// Per call site: locations whose uses route (also) to callee entries,
    /// with a flag for whether the call itself consumes the value too.
    routes: FxHashMap<Cp, FxHashMap<u32, (bool, Vec<Cp>)>>,
}

impl<'a> IntervalDepSource<'a> {
    /// Precomputes the id-mapped def/use views.
    pub fn new(program: &'a Program, pre: &'a PreAnalysis, du: &'a DefUse) -> Self {
        let mut def_ids: FxHashMap<Cp, Vec<u32>> = FxHashMap::default();
        let mut use_ids: FxHashMap<Cp, Vec<u32>> = FxHashMap::default();
        for (cp, sets) in &du.sets {
            let mut d: Vec<u32> = sets
                .defs
                .iter()
                .map(|l| du.locs.id(l).expect("interned in defuse pass 3"))
                .collect();
            d.sort_unstable();
            def_ids.insert(*cp, d);
            let mut u: Vec<u32> = sets
                .uses
                .iter()
                .map(|l| du.locs.id(l).expect("interned in defuse pass 3"))
                .collect();
            u.sort_unstable();
            use_ids.insert(*cp, u);
        }
        // Call-site routing: callee-used locations flow def → callee entry;
        // the call node itself consumes a location only when it really uses
        // it (arguments, pointer bases) or must pre-join a spurious def.
        let mut routes: FxHashMap<Cp, FxHashMap<u32, (bool, Vec<Cp>)>> = FxHashMap::default();
        for (pid, proc) in program.procs.iter_enumerated() {
            if proc.is_external {
                continue;
            }
            for (nid, node) in proc.nodes.iter_enumerated() {
                if !matches!(node.cmd, Cmd::Call { .. }) {
                    continue;
                }
                let cp = Cp::new(pid, nid);
                let mut per_loc: FxHashMap<u32, (bool, Vec<Cp>)> = FxHashMap::default();
                for &t_pid in pre.call_targets(cp) {
                    let callee = &program.procs[t_pid];
                    if callee.is_external {
                        continue;
                    }
                    let entry = Cp::new(t_pid, callee.entry);
                    for l in &du.summary_uses[t_pid] {
                        let Some(id) = du.locs.id(l) else { continue };
                        per_loc
                            .entry(id)
                            .or_insert((false, Vec::new()))
                            .1
                            .push(entry);
                    }
                }
                if per_loc.is_empty() {
                    continue;
                }
                // The call keeps its self-edge for real uses and for the
                // pre-join of callee-defined (spurious-def) locations.
                let sets = &du.sets[&cp];
                for (id, (self_edge, _)) in per_loc.iter_mut() {
                    let l = du.locs.loc(*id);
                    *self_edge = sets.real_uses.binary_search(&l).is_ok()
                        || sets.defs.binary_search(&l).is_ok();
                }
                routes.insert(cp, per_loc);
            }
        }
        IntervalDepSource {
            program,
            pre,
            du,
            def_ids,
            use_ids,
            routes,
        }
    }
}

impl DepSource for IntervalDepSource<'_> {
    fn defs(&self, cp: Cp) -> &[u32] {
        self.def_ids.get(&cp).map_or(&[], Vec::as_slice)
    }

    fn uses(&self, cp: Cp) -> &[u32] {
        self.use_ids.get(&cp).map_or(&[], Vec::as_slice)
    }

    fn is_real(&self, cp: Cp, loc: u32) -> bool {
        self.du.is_real(cp, &self.du.locs.loc(loc))
    }

    fn use_routes(&self, cp: Cp, loc: u32) -> UseRoutes<'_> {
        match self.routes.get(&cp).and_then(|m| m.get(&loc)) {
            Some((self_edge, entries)) => UseRoutes {
                self_edge: *self_edge,
                entries: entries.as_slice(),
            },
            None => UseRoutes {
                self_edge: true,
                entries: &[],
            },
        }
    }

    fn inter_edges(&self, sink: &mut dyn FnMut(u32, Cp, Cp, bool)) {
        use sga_domains::AbsLoc;
        let mut add = |l: &AbsLoc, from: Cp, to: Cp, is_return: bool| {
            if let Some(id) = self.du.locs.id(l) {
                sink(id, from, to, is_return);
            }
        };
        for (pid, proc) in self.program.procs.iter_enumerated() {
            if proc.is_external {
                continue;
            }
            for (nid, node) in proc.nodes.iter_enumerated() {
                if !matches!(node.cmd, Cmd::Call { .. }) {
                    continue;
                }
                let cp = Cp::new(pid, nid);
                for &t_pid in self.pre.call_targets(cp) {
                    let callee = &self.program.procs[t_pid];
                    if callee.is_external {
                        continue;
                    }
                    let entry = Cp::new(t_pid, callee.entry);
                    let exit = Cp::new(t_pid, callee.exit);
                    for &p in &callee.params {
                        add(&AbsLoc::Var(p), cp, entry, false);
                    }
                    // Callee-used locations arrive at the entry straight
                    // from their reaching definitions (see use_routes), not
                    // via the call node.
                    for l in &self.du.summary_defs[t_pid] {
                        add(l, exit, cp, true);
                    }
                    add(&AbsLoc::Var(callee.ret_var), exit, cp, true);
                }
            }
        }
    }
}

/// Contracts relay chains for one location, per §5's optimization, iterated
/// to convergence (handles relay cycles from recursion).
fn bypass_contract<S: DepSource>(
    source: &S,
    loc: u32,
    edges: &[(Cp, Cp, bool)],
) -> Vec<(Cp, Cp, bool)> {
    use std::collections::BTreeSet;
    // Adjacency with kinds; the bool on each edge is the return-flow flag of
    // its final hop, preserved across contraction.
    let mut outs: FxHashMap<Cp, BTreeSet<(Cp, bool)>> = FxHashMap::default();
    let mut ins: FxHashMap<Cp, BTreeSet<(Cp, bool)>> = FxHashMap::default();
    for &(a, b, k) in edges {
        if a == b && !source.is_real(a, loc) {
            // A relay self-loop forwards a value to itself: a no-op for
            // idempotent joins; dropping it avoids spurious widening cycles.
            continue;
        }
        outs.entry(a).or_default().insert((b, k));
        ins.entry(b).or_default().insert((a, k));
    }

    // Contract relays greedily while it does not grow the edge set
    // (in·out ≤ in+out, i.e. a chain or a fan): the paper's a →l b →l c
    // rule generalized. Hub relays (m×n) stay; the sparse engine simply
    // forwards through them at run time.
    let mut queue: Vec<Cp> = outs.keys().chain(ins.keys()).copied().collect();
    queue.sort_unstable();
    queue.dedup();
    let mut pending: Vec<Cp> = queue;
    while let Some(b) = pending.pop() {
        if source.is_real(b, loc) {
            continue;
        }
        let in_deg = ins.get(&b).map_or(0, BTreeSet::len);
        let out_deg = outs.get(&b).map_or(0, BTreeSet::len);
        if in_deg == 0 || out_deg == 0 || in_deg * out_deg > in_deg + out_deg {
            continue;
        }
        let in_edges: Vec<(Cp, bool)> = ins.remove(&b).unwrap_or_default().into_iter().collect();
        let out_edges: Vec<(Cp, bool)> = outs.remove(&b).unwrap_or_default().into_iter().collect();
        for &(a, _) in &in_edges {
            outs.entry(a).or_default().remove(&(b, false));
            outs.entry(a).or_default().remove(&(b, true));
        }
        for &(c, kc) in &out_edges {
            ins.entry(c).or_default().remove(&(b, kc));
        }
        for &(a, _) in &in_edges {
            for &(c, kc) in &out_edges {
                if a == c && !source.is_real(a, loc) {
                    // Contracting b out of a relay cycle a → b → a would
                    // produce a relay self-loop — a forwarding no-op, drop
                    // it. A *real* a keeps its self-loop: it is genuine
                    // feedback and must stay a widening point.
                    continue;
                }
                outs.entry(a).or_default().insert((c, kc));
                ins.entry(c).or_default().insert((a, kc));
            }
        }
        // Degrees of the neighbours changed; they may be contractible now.
        pending.extend(in_edges.iter().map(|&(a, _)| a));
        pending.extend(out_edges.iter().map(|&(c, _)| c));
    }

    let mut out: Vec<(Cp, Cp, bool)> = Vec::new();
    for (a, bs) in outs {
        for (b, k) in bs {
            out.push((a, b, k));
        }
    }
    out.sort_unstable();
    out.dedup();
    out
}

/// Control points participating in dependency cycles (including
/// self-loops), plus a topological ranking of the dependency graph's SCC
/// condensation (producers rank before consumers).
fn dep_graph_structure(out: &FxHashMap<Cp, Vec<(u32, Cp)>>) -> (FxHashSet<Cp>, FxHashMap<Cp, u32>) {
    // Dense-number the involved cps.
    let mut ids: FxHashMap<Cp, usize> = FxHashMap::default();
    let mut cps: Vec<Cp> = Vec::new();
    let id_of = |cp: Cp, ids: &mut FxHashMap<Cp, usize>, cps: &mut Vec<Cp>| -> usize {
        *ids.entry(cp).or_insert_with(|| {
            cps.push(cp);
            cps.len() - 1
        })
    };
    let mut edges: Vec<(usize, usize)> = Vec::new();
    let mut self_loops: FxHashSet<Cp> = FxHashSet::default();
    for (&from, outs) in out {
        for &(_, to) in outs {
            if from == to {
                self_loops.insert(from);
                continue;
            }
            let a = id_of(from, &mut ids, &mut cps);
            let b = id_of(to, &mut ids, &mut cps);
            edges.push((a, b));
        }
    }
    let mut g = AdjGraph::new(cps.len());
    for (a, b) in edges {
        g.add_edge(a, b);
    }
    let scc = Scc::compute(&g);
    let mut cycle: FxHashSet<Cp> = self_loops;
    let mut rank: FxHashMap<Cp, u32> = FxHashMap::default();
    let ncomp = scc.len() as u32;
    for (i, &cp) in cps.iter().enumerate() {
        if scc.in_cycle(i) {
            cycle.insert(cp);
        }
        // Tarjan numbers components in reverse topological order (an SCC
        // completes after everything it reaches), so invert for
        // producers-first ranks.
        rank.insert(cp, ncomp - scc.component[i] as u32);
    }
    (cycle, rank)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{defuse, preanalysis};
    use sga_cfront::parse;
    use sga_domains::AbsLoc;
    use sga_ir::VarId;

    struct Setup {
        program: Program,
        du: DefUse,
        deps: DataDeps,
    }

    fn setup(src: &str) -> Setup {
        setup_opt(src, DepGenOptions::default())
    }

    fn setup_opt(src: &str, options: DepGenOptions) -> Setup {
        let program = parse(src).unwrap();
        let pre = preanalysis::run(&program);
        let du = defuse::compute(&program, &pre);
        let deps = generate(&program, &pre, &du, options);
        Setup { program, du, deps }
    }

    fn var(program: &Program, name: &str) -> VarId {
        program
            .vars
            .iter_enumerated()
            .find(|(_, v)| v.name == name)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    fn assign_to(program: &Program, name: &str) -> Vec<Cp> {
        let v = var(program, name);
        program
            .all_points()
            .filter(
                |cp| matches!(program.cmd(*cp), Cmd::Assign(sga_ir::LVal::Var(x), _) if *x == v),
            )
            .collect()
    }

    #[test]
    fn straight_line_dependency() {
        let s = setup("int main() { int x = 1; int y = x; return y; }");
        let x_def = assign_to(&s.program, "x")[0];
        let y_def = assign_to(&s.program, "y")[0];
        let x_id = s.du.locs.id(&AbsLoc::Var(var(&s.program, "x"))).unwrap();
        assert!(
            s.deps.has(x_def, x_id, y_def),
            "x flows def→use:\n{:?}",
            s.deps.out
        );
    }

    #[test]
    fn kill_blocks_dependency() {
        // x = 1; x = 2; y = x — only the second def reaches.
        let s = setup("int main() { int x = 1; x = 2; int y = x; return y; }");
        let xdefs = assign_to(&s.program, "x");
        let y_def = assign_to(&s.program, "y")[0];
        let x_id = s.du.locs.id(&AbsLoc::Var(var(&s.program, "x"))).unwrap();
        assert!(
            !s.deps.has(xdefs[0], x_id, y_def),
            "killed def must not flow"
        );
        assert!(s.deps.has(xdefs[1], x_id, y_def));
    }

    #[test]
    fn both_branch_defs_reach_join_use() {
        let s = setup("int main(int c) { int x; if (c) x = 1; else x = 2; return x; }");
        let xdefs = assign_to(&s.program, "x");
        assert_eq!(xdefs.len(), 2);
        let x_id = s.du.locs.id(&AbsLoc::Var(var(&s.program, "x"))).unwrap();
        let ret = s
            .program
            .all_points()
            .find(|cp| matches!(s.program.cmd(*cp), Cmd::Return(Some(_))))
            .unwrap();
        assert!(s.deps.has(xdefs[0], x_id, ret));
        assert!(s.deps.has(xdefs[1], x_id, ret));
    }

    #[test]
    fn loop_carried_dependency_is_cyclic() {
        let s = setup("int main() { int i = 0; while (i < 9) { i = i + 1; } return i; }");
        let incr = assign_to(&s.program, "i")
            .into_iter()
            .find(|cp| matches!(s.program.cmd(*cp), Cmd::Assign(_, sga_ir::Expr::Binop(..))))
            .unwrap();
        assert!(
            s.deps.cycle_nodes.contains(&incr),
            "loop increment must be a widening point: {:?}",
            s.deps.cycle_nodes
        );
    }

    #[test]
    fn interprocedural_global_flow() {
        // The paper's §5 example: x defined in f, used in h, g in between
        // neither defines nor uses it — after bypass, the dependency skips
        // g entirely.
        let s = setup(
            "int x;
             int h() { return x; }
             int g() { return h(); }
             int f() { x = 7; return g(); }
             int main() { return f(); }",
        );
        let x_def = assign_to(&s.program, "x")[0];
        let x_id = s.du.locs.id(&AbsLoc::Var(var(&s.program, "x"))).unwrap();
        let h = s.program.proc_by_name("h").unwrap();
        let h_ret = s
            .program
            .all_points()
            .find(|cp| cp.proc == h && matches!(s.program.cmd(*cp), Cmd::Return(Some(_))))
            .unwrap();
        assert!(
            s.deps.has(x_def, x_id, h_ret),
            "def in f must reach use in h directly: {:?}",
            s.deps.out.get(&x_def)
        );
        // And the value does NOT route through g's entry (bypass applied).
        let g_proc = s.program.proc_by_name("g").unwrap();
        let g_entry = Cp::new(g_proc, s.program.procs[g_proc].entry);
        assert!(
            !s.deps.has(x_def, x_id, g_entry),
            "bypass should skip g's relay for x"
        );
    }

    #[test]
    fn bypass_off_keeps_relay_chain() {
        let s = setup_opt(
            "int x;
             int h() { return x; }
             int g() { return h(); }
             int f() { x = 7; return g(); }
             int main() { return f(); }",
            DepGenOptions { bypass: false },
        );
        let x_def = assign_to(&s.program, "x")[0];
        let x_id = s.du.locs.id(&AbsLoc::Var(var(&s.program, "x"))).unwrap();
        // Without bypass, x flows hop by hop: def → call g → entry g → …
        let h = s.program.proc_by_name("h").unwrap();
        let h_ret = s
            .program
            .all_points()
            .find(|cp| cp.proc == h && matches!(s.program.cmd(*cp), Cmd::Return(Some(_))))
            .unwrap();
        assert!(
            !s.deps.has(x_def, x_id, h_ret),
            "direct edge only exists after bypass"
        );
        assert!(s.deps.stats.final_edges >= s.deps.stats.raw_edges);
    }

    #[test]
    fn bypass_reduces_edge_count() {
        let src = "int x;
             int h() { return x; }
             int g() { return h(); }
             int f() { x = 7; return g(); }
             int main() { return f(); }";
        let with = setup(src);
        let without = setup_opt(src, DepGenOptions { bypass: false });
        assert!(
            with.deps.stats.final_edges < without.deps.stats.final_edges,
            "bypass {} !< raw {}",
            with.deps.stats.final_edges,
            without.deps.stats.final_edges
        );
    }

    #[test]
    fn no_spurious_sibling_dependency() {
        // §5's motivating example: f and g both call h (which ignores x);
        // the def of x in f must NOT reach the use in g.
        let s = setup(
            "int x; int a; int b;
             int h() { return 0; }
             int f() { x = 0; h(); a = x; return 0; }
             int g() { x = 1; h(); b = x; return 0; }
             int main(int c) { if (c) f(); else g(); return 0; }",
        );
        let x_id = s.du.locs.id(&AbsLoc::Var(var(&s.program, "x"))).unwrap();
        let f = s.program.proc_by_name("f").unwrap();
        let g = s.program.proc_by_name("g").unwrap();
        let def_in_f = assign_to(&s.program, "x")
            .into_iter()
            .find(|cp| cp.proc == f)
            .unwrap();
        let def_in_g = assign_to(&s.program, "x")
            .into_iter()
            .find(|cp| cp.proc == g)
            .unwrap();
        let use_in_f = assign_to(&s.program, "a")[0];
        let use_in_g = assign_to(&s.program, "b")[0];
        assert!(s.deps.has(def_in_f, x_id, use_in_f));
        assert!(s.deps.has(def_in_g, x_id, use_in_g));
        assert!(
            !s.deps.has(def_in_f, x_id, use_in_g),
            "spurious cross-procedure dependency 1 →x 4 must be absent (§5)"
        );
        assert!(!s.deps.has(def_in_g, x_id, use_in_f));
    }

    #[test]
    fn recursive_function_has_cyclic_param_dependency() {
        let s = setup(
            "int f(int n) { if (n <= 0) return 0; return f(n - 1); }
             int main() { return f(9); }",
        );
        assert!(
            !s.deps.cycle_nodes.is_empty(),
            "recursion must create dep cycles"
        );
    }
}
