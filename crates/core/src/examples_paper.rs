//! The paper's running Examples 1–5 (§2.5–§2.8), reproduced as executable
//! tests over the real pipeline.
//!
//! The three-line program of Example 1:
//!
//! ```text
//! 10: x := &y;   11: *p := &z;   12: y := x;
//! ```
//!
//! with `p`'s points-to set varying per example. We realize the setups with
//! small C programs whose pre-analysis produces exactly the intended
//! points-to facts, then check the computed D̂/Û sets and data dependencies
//! against the paper's.

use crate::depgen::{generate, DepGenOptions};
use crate::{defuse, preanalysis};
use sga_cfront::parse;
use sga_domains::AbsLoc;
use sga_ir::{Cmd, Cp, Expr, LVal, Program, VarId};

struct Setup {
    program: Program,
    du: defuse::DefUse,
    deps: crate::depgen::DataDeps,
}

fn setup(src: &str) -> Setup {
    let program = parse(src).unwrap();
    let pre = preanalysis::run(&program);
    let du = defuse::compute(&program, &pre);
    let deps = generate(&program, &pre, &du, DepGenOptions::default());
    Setup { program, du, deps }
}

fn var(program: &Program, name: &str) -> VarId {
    program
        .vars
        .iter_enumerated()
        .find(|(_, v)| v.name == name)
        .map(|(i, _)| i)
        .unwrap_or_else(|| panic!("no var {name}"))
}

/// Control point of the (unique) command matching `pred`.
fn cp_of(program: &Program, pred: impl Fn(&Cmd) -> bool) -> Cp {
    let mut found = program.all_points().filter(|cp| pred(program.cmd(*cp)));
    let cp = found.next().expect("no matching command");
    assert!(found.next().is_none(), "ambiguous command selector");
    cp
}

/// Example 1 setup where `p` may point to both `x` and `y`.
const EX1_SRC: &str = "
    int y; int z;
    int *x; int **p;
    int main(int c) {
        if (c) p = &x; else p = (int**)&y;
        x = &y;      /* point 10 */
        *p = &z;     /* point 11 */
        y = (int)x;  /* point 12 */
        return 0;
    }";

#[test]
fn example_1_def_use_sets() {
    // Paper: with p ↦ {x, y}:
    //   D(10)={x} U(10)=∅ ; D(11)={x,y} U(11)={p,x,y} ; D(12)={y} U(12)={x}.
    let s = setup(EX1_SRC);
    let p = &s.program;
    let (x, y, pv) = (var(p, "x"), var(p, "y"), var(p, "p"));

    let c10 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Var(v), Expr::AddrOf(_)) if *v == x),
    );
    let c11 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Deref(v), _) if *v == pv),
    );
    let c12 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Var(v), Expr::Var(_)) if *v == y),
    );

    assert_eq!(s.du.defs(c10), &[AbsLoc::Var(x)]);
    assert!(s.du.uses(c10).is_empty(), "U(10) = ∅: {:?}", s.du.uses(c10));

    let d11: Vec<_> = s.du.defs(c11).to_vec();
    assert!(
        d11.contains(&AbsLoc::Var(x)) && d11.contains(&AbsLoc::Var(y)),
        "{d11:?}"
    );
    let u11: Vec<_> = s.du.uses(c11).to_vec();
    for l in [AbsLoc::Var(pv), AbsLoc::Var(x), AbsLoc::Var(y)] {
        assert!(
            u11.contains(&l),
            "U(11) must contain {l:?} (weak update): {u11:?}"
        );
    }

    assert_eq!(s.du.defs(c12), &[AbsLoc::Var(y)]);
    assert_eq!(s.du.uses(c12), &[AbsLoc::Var(x)]);
}

#[test]
fn example_2_data_dependencies() {
    // Paper: exactly 10 →x 11 and 11 →x 12 (and NOT 10 →x 12, because 11's
    // weak definition of x intervenes).
    let s = setup(EX1_SRC);
    let p = &s.program;
    let (x, y, pv) = (var(p, "x"), var(p, "y"), var(p, "p"));
    let x_id = s.du.locs.id(&AbsLoc::Var(x)).unwrap();

    let c10 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Var(v), Expr::AddrOf(_)) if *v == x),
    );
    let c11 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Deref(v), _) if *v == pv),
    );
    let c12 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Var(v), Expr::Var(_)) if *v == y),
    );

    assert!(s.deps.has(c10, x_id, c11), "10 →x 11 missing");
    assert!(s.deps.has(c11, x_id, c12), "11 →x 12 missing");
    assert!(
        !s.deps.has(c10, x_id, c12),
        "10 →x 12 must be blocked by D̂(11)"
    );
}

#[test]
fn example_3_def_use_chains_differ() {
    // Conventional def-use chains WOULD include 10 →x 12 because 11 only
    // *may* kill x. Our data dependency does not — and that is precisely
    // what makes sparse results exact (Example 5): the def-use-chain
    // variant would propagate 10's x into 12, joining stale information.
    let s = setup(EX1_SRC);
    let p = &s.program;
    let (x, y, pv) = (var(p, "x"), var(p, "y"), var(p, "p"));
    let x_id = s.du.locs.id(&AbsLoc::Var(x)).unwrap();
    let c10 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Var(v), Expr::AddrOf(_)) if *v == x),
    );
    let c12 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Var(v), Expr::Var(_)) if *v == y),
    );
    // The def-use chain 10 →x 12 exists syntactically (no always-kill in
    // between) …
    let c11 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Deref(v), _) if *v == pv),
    );
    assert!(
        s.du.defs(c11).contains(&AbsLoc::Var(x)) && s.du.uses(c11).contains(&AbsLoc::Var(x)),
        "11 may-kills x"
    );
    // … but the data dependency excludes it.
    assert!(!s.deps.has(c10, x_id, c12));
}

#[test]
fn example_4_strong_update_needs_no_self_use() {
    // With p ↦ {y} (singleton, non-summary): *p := … strong-updates y, and
    // U(11) = {p} only — the defined location y is NOT a use.
    let s = setup(
        "int y; int z;
         int *x; int **p;
         int main() {
            p = (int**)&y;
            x = &y;      /* 10 */
            *p = &z;     /* 11 */
            y = (int)x;  /* 12 */
            return 0;
         }",
    );
    let p = &s.program;
    let (x, y, pv) = (var(p, "x"), var(p, "y"), var(p, "p"));
    let c11 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Deref(v), _) if *v == pv),
    );
    assert_eq!(s.du.defs(c11), &[AbsLoc::Var(y)], "D(11) = {{y}}");
    assert_eq!(
        s.du.uses(c11),
        &[AbsLoc::Var(pv)],
        "U(11) = {{p}} under strong update"
    );
    // And x now flows directly 10 → 12.
    let x_id = s.du.locs.id(&AbsLoc::Var(x)).unwrap();
    let c10 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Var(v), Expr::AddrOf(_)) if *v == x),
    );
    let c12 = cp_of(
        p,
        |c| matches!(c, Cmd::Assign(LVal::Var(v), Expr::Var(_)) if *v == y),
    );
    assert!(s.deps.has(c10, x_id, c12), "strong update does not relay x");
}

#[test]
fn example_5_sparse_precision_equals_dense() {
    // The quantitative counterpart of Example 5: with p ↦ {x}, the
    // def-use-chain analysis would compute {y} ∪ {z} for x at point 12; the
    // data-dependency-based sparse analysis computes exactly the dense
    // result. We assert sparse == base on every D̂ entry.
    let src = "
        int y; int z;
        int *x; int *w;
        int main() {
            w = &y;      /* x's old value, observable */
            x = &y;      /* 10 */
            x = &z;      /* 11: 'strong kill' of x (p = {x} in the paper) */
            w = x;       /* 12: must see exactly {z} */
            return 0;
        }";
    let program = parse(src).unwrap();
    let base = crate::interval::analyze(&program, crate::interval::Engine::Base);
    let sparse = crate::interval::analyze(&program, crate::interval::Engine::Sparse);
    let pre = preanalysis::run(&program);
    let du = defuse::compute(&program, &pre);
    for cp in program.all_points() {
        for l in du.defs(cp) {
            let b = base.value_at(cp, l);
            let s = sparse.value_at(cp, l);
            assert_eq!(b, s, "precision mismatch at {cp} for {l:?}");
        }
    }
    // And the final points-to set of w is exactly {z}.
    let w = var(&program, "w");
    let z = var(&program, "z");
    let c12 = cp_of(
        &program,
        |c| matches!(c, Cmd::Assign(LVal::Var(v), Expr::Var(_)) if *v == w),
    );
    let v = sparse.value_at(c12, &AbsLoc::Var(w));
    assert_eq!(
        v.ptr.iter().copied().collect::<Vec<_>>(),
        vec![AbsLoc::Var(z)]
    );
}
