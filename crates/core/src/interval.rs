//! The interval-domain analyzers of §6.1: `Interval_vanilla`,
//! `Interval_base`, and `Interval_sparse`.
//!
//! * **vanilla** — the global dense analysis: whole abstract states flow
//!   along every ICFG edge, including through callees.
//! * **base** — vanilla plus *access-based localization* \[38\]: a call passes
//!   the callee only the locations it (transitively) accesses; the rest of
//!   the caller's state meets the callee's effects at the return point.
//!   This is the paper's baseline, "not a straw-man".
//! * **sparse** — the analysis derived by the framework: pre-analysis,
//!   D̂/Û approximation, dependency generation, sparse fixpoint.
//!
//! All three share the transfer functions of [`crate::semantics`]; `sparse`
//! preserves `base`'s precision on every `D̂(c)` entry (Lemma 2), which the
//! workspace's integration tests assert program-by-program.

use crate::budget::Budget;
use crate::defuse::{self, DefUse};
use crate::dense::{self, DenseSpec};
use crate::depgen::{self, DataDeps, DepGenOptions};
use crate::depstore::DepBackend;
use crate::icfg::{EdgeKind, Icfg, InEdge};
use crate::preanalysis::{self, PreAnalysis};
use crate::semantics;
use crate::sparse::{self, SparseSpec};
use crate::stats::AnalysisStats;
use crate::widening::{WideningConfig, WideningPlan};
use sga_domains::{AbsLoc, Lattice, LocSet, State, Thresholds, Value};
use sga_ir::{Cmd, Cp, ProcId, Program};
use sga_utils::stats::{peak_rss_bytes, Phase};
use sga_utils::{FxHashMap, IndexVec, PMap};

/// Which analyzer to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Engine {
    /// Global dense analysis without localization.
    Vanilla,
    /// Dense analysis with access-based localization (the baseline).
    Base,
    /// The sparse analysis derived by the framework.
    Sparse,
}

/// Extra knobs for experiments.
#[derive(Clone, Copy, Debug, Default)]
pub struct AnalyzeOptions {
    /// Dependency-generation options (sparse only).
    pub depgen: DepGenOptions,
    /// Dependency representation the sparse solver iterates (sparse only;
    /// results are byte-identical across backends).
    pub dep_backend: DepBackend,
    /// Derive D̂/Û in the semi-sparse regime (§3.2's Hardekopf & Lin
    /// instance): only top-level variables treated sparsely.
    pub semi_sparse: bool,
    /// Widening strategy applied at cycle heads / widening points.
    pub widening: WideningConfig,
    /// Work budget for the fixpoint; on exhaustion the solve degrades
    /// soundly and `stats.degraded` is set.
    pub budget: Budget,
}

/// An interval analysis result.
#[derive(Debug)]
pub struct IntervalResult {
    /// The engine that produced it.
    pub engine: Engine,
    /// Post-states per control point. Dense engines bind every location
    /// they saw; the sparse engine binds exactly `D̂(c)` (Lemma 1's
    /// guarantee covers those entries).
    pub values: FxHashMap<Cp, State>,
    /// Phase statistics.
    pub stats: AnalysisStats,
}

impl IntervalResult {
    /// The abstract value of `l` in the post-state of `cp` (⊥ if unbound).
    pub fn value_at(&self, cp: Cp, l: &AbsLoc) -> Value {
        self.values.get(&cp).map_or_else(Value::bot, |s| s.get(l))
    }

    /// The post-state at `cp` (empty if nothing reached it).
    pub fn state_at(&self, cp: Cp) -> State {
        self.values.get(&cp).cloned().unwrap_or_default()
    }
}

/// Runs the chosen interval analyzer with default options.
pub fn analyze(program: &Program, engine: Engine) -> IntervalResult {
    analyze_with(program, engine, AnalyzeOptions::default())
}

/// Runs the chosen interval analyzer.
pub fn analyze_with(program: &Program, engine: Engine, options: AnalyzeOptions) -> IntervalResult {
    let total = Phase::start("total");
    let pre_phase = Phase::start("pre");
    let pre = preanalysis::run(program);
    let pre_time = pre_phase.stop();
    let icfg = Icfg::build(program, &pre);

    let mut stats = AnalysisStats {
        pre_time,
        widening: options.widening.strategy.name(),
        ..AnalysisStats::default()
    };
    let plan = WideningPlan::for_program(program, options.widening);

    let values = match engine {
        Engine::Vanilla | Engine::Base => {
            let localize = engine == Engine::Base;
            let (in_sets, out_sets) = if localize {
                let du = defuse::compute(program, &pre);
                stats.num_locs = du.locs.len();
                stats.avg_defs = du.avg_def_size();
                stats.avg_uses = du.avg_use_size();
                localization_sets(program, &du)
            } else {
                (IndexVec::new(), IndexVec::new())
            };
            let spec = IntervalDenseSpec {
                program,
                localize,
                in_sets,
                out_sets,
            };
            let fix = Phase::start("fix");
            let result = dense::solve_with(program, &icfg, &spec, &plan, &options.budget);
            stats.fix_time = fix.stop();
            stats.iterations = result.iterations;
            stats.degraded = result.degraded;
            result.post
        }
        Engine::Sparse => {
            let dep_phase = Phase::start("dep");
            let du = if options.semi_sparse {
                let coarse = preanalysis::coarsen_semi_sparse(program, &pre.state);
                defuse::compute_with_state(program, &pre, &coarse)
            } else {
                defuse::compute(program, &pre)
            };
            let deps = depgen::generate(program, &pre, &du, options.depgen);
            stats.dep_time = dep_phase.stop();
            stats.num_locs = du.locs.len();
            stats.avg_defs = du.avg_def_size();
            stats.avg_uses = du.avg_use_size();
            stats.dep_edges_raw = deps.stats.raw_edges;
            stats.dep_edges = deps.stats.final_edges;
            let spec = IntervalSparseSpec {
                program,
                pre: &pre,
                du: &du,
            };
            let fix = Phase::start("fix");
            let result = sparse::solve_backend(
                options.dep_backend,
                program,
                &icfg,
                &deps,
                &spec,
                &plan,
                &options.budget,
            );
            stats.fix_time = fix.stop();
            stats.iterations = result.iterations;
            stats.degraded = result.degraded;
            result
                .values
                .into_iter()
                .map(|(cp, m)| (cp, State::from_pmap(m)))
                .collect()
        }
    };

    stats.total_time = total.stop();
    stats.peak_mem_bytes = peak_rss_bytes();
    IntervalResult {
        engine,
        values,
        stats,
    }
}

/// Re-exposed pieces for callers who want to stage the pipeline themselves
/// (the benchmark harness and the equality tests do).
pub struct Pipeline<'p> {
    /// The analyzed program.
    pub program: &'p Program,
    /// Pre-analysis result.
    pub pre: PreAnalysis,
    /// Interprocedural CFG.
    pub icfg: Icfg,
    /// Def/use sets.
    pub du: DefUse,
    /// Data dependencies.
    pub deps: DataDeps,
    /// The widening plan resolved against the program.
    pub widening: WideningPlan,
}

impl<'p> Pipeline<'p> {
    /// Runs pre-analysis, def/use, dependency generation, and threshold
    /// harvesting.
    pub fn prepare(program: &'p Program, options: AnalyzeOptions) -> Pipeline<'p> {
        let pre = preanalysis::run(program);
        let icfg = Icfg::build(program, &pre);
        let du = defuse::compute(program, &pre);
        let deps = depgen::generate(program, &pre, &du, options.depgen);
        let widening = WideningPlan::for_program(program, options.widening);
        Pipeline {
            program,
            pre,
            icfg,
            du,
            deps,
            widening,
        }
    }
}

// ---------------------------------------------------------------------------
// Dense spec
// ---------------------------------------------------------------------------

/// Localization sets per procedure: what flows in at a call edge and what
/// flows back at a return edge.
type InSets = IndexVec<ProcId, LocSet>;
type OutSets = IndexVec<ProcId, LocSet>;

fn localization_sets(program: &Program, du: &DefUse) -> (InSets, OutSets) {
    let mut ins: InSets = IndexVec::with_capacity(program.procs.len());
    let mut outs: OutSets = IndexVec::with_capacity(program.procs.len());
    for (pid, proc) in program.procs.iter_enumerated() {
        let mut in_set: Vec<AbsLoc> = du.summary_uses[pid].clone();
        in_set.extend(proc.params.iter().map(|&p| AbsLoc::Var(p)));
        ins.push(in_set.into_iter().collect());
        let mut out_set: Vec<AbsLoc> = du.summary_defs[pid].clone();
        out_set.push(AbsLoc::Var(proc.ret_var));
        outs.push(out_set.into_iter().collect());
    }
    (ins, outs)
}

struct IntervalDenseSpec<'p> {
    program: &'p Program,
    localize: bool,
    in_sets: InSets,
    out_sets: OutSets,
}

impl DenseSpec for IntervalDenseSpec<'_> {
    type St = State;

    fn bottom(&self) -> State {
        State::new()
    }

    fn initial(&self) -> State {
        initial_state(self.program)
    }

    fn transfer(&self, cp: Cp, input: &State) -> State {
        semantics::transfer(self.program, cp, input)
    }

    fn edge(
        &self,
        dst: Cp,
        edge: &InEdge,
        src_post: &State,
        lookup: &dyn Fn(Cp) -> Option<State>,
    ) -> State {
        match edge.kind {
            EdgeKind::Intra => src_post.clone(),
            EdgeKind::Call { site } => {
                let callee = &self.program.procs[dst.proc];
                let Cmd::Call { args, .. } = self.program.cmd(site) else {
                    unreachable!("call edge from non-call site")
                };
                let bound = semantics::bind_args(self.program, callee, args, src_post);
                if self.localize {
                    bound.restrict(&self.in_sets[dst.proc])
                } else {
                    bound
                }
            }
            EdgeKind::Return { site } => {
                let callee_id = edge.src.proc;
                let callee = &self.program.procs[callee_id];
                let Cmd::Call { ret, .. } = self.program.cmd(site) else {
                    unreachable!("return edge without call site")
                };
                if self.localize {
                    // Access-based localization: the callee's effects on its
                    // accessed locations meet the caller's state at the
                    // return point (a weak return join).
                    let effects = src_post.restrict(&self.out_sets[callee_id]);
                    let caller = lookup(site).unwrap_or_default();
                    let merged = caller.join(&effects);
                    semantics::bind_return(self.program, callee, ret.as_ref(), &merged)
                } else {
                    semantics::bind_return(self.program, callee, ret.as_ref(), src_post)
                }
            }
            EdgeKind::ExternalRet { site } => {
                let Cmd::Call { ret, .. } = self.program.cmd(site) else {
                    unreachable!("external-return edge without call site")
                };
                semantics::bind_external(self.program, ret.as_ref(), src_post)
            }
        }
    }

    fn join(&self, a: &State, b: &State) -> State {
        a.join(b)
    }

    fn widen(&self, a: &State, b: &State) -> State {
        a.widen(b)
    }

    fn widen_with(&self, a: &State, b: &State, thresholds: &Thresholds) -> State {
        a.widen_with(b, thresholds)
    }

    fn narrow(&self, a: &State, b: &State) -> State {
        a.narrow(b)
    }
}

/// The state entering `main`: its parameters are unknown integers.
pub fn initial_state(program: &Program) -> State {
    let mut s = State::new();
    for &p in &program.procs[program.main].params {
        s = s.set(AbsLoc::Var(p), Value::unknown_int());
    }
    s
}

// ---------------------------------------------------------------------------
// Sparse spec
// ---------------------------------------------------------------------------

/// The interval instance of [`SparseSpec`] — public so external drivers
/// (the parallel pipeline) can stage the pieces themselves.
pub struct IntervalSparseSpec<'p> {
    /// The analyzed program.
    pub program: &'p Program,
    /// Pre-analysis result (call targets, points-to).
    pub pre: &'p PreAnalysis,
    /// Def/use sets with the interned location table.
    pub du: &'p DefUse,
}

impl SparseSpec for IntervalSparseSpec<'_> {
    type L = AbsLoc;
    type V = Value;

    fn loc_of(&self, id: u32) -> AbsLoc {
        self.du.locs.loc(id)
    }

    fn initial(&self) -> PMap<AbsLoc, Value> {
        initial_state(self.program).into_pmap()
    }

    fn transfer(
        &self,
        cp: Cp,
        pre_in: &PMap<AbsLoc, Value>,
        ret_in: &PMap<AbsLoc, Value>,
    ) -> PMap<AbsLoc, Value> {
        let pre_state = State::from_pmap(pre_in.clone());
        let post = match self.program.cmd(cp) {
            Cmd::Call { ret, args, .. } => {
                // The post-call view of callee-affected locations joins the
                // pre-call value (the "spurious definition" side of Def 5)
                // with what returns from the callee exits.
                let joined = State::from_pmap(pre_in.union_with(ret_in, |_, a, b| a.join(b)));
                let mut out = joined.clone();
                let mut ret_val: Option<Value> = None;
                let mut any_internal = false;
                for &t in self.pre.call_targets(cp) {
                    let callee = &self.program.procs[t];
                    if callee.is_external {
                        continue;
                    }
                    any_internal = true;
                    for (i, &p) in callee.params.iter().enumerate() {
                        // Arguments are evaluated in the PRE-call state.
                        let v = match args.get(i) {
                            Some(a) => semantics::eval(self.program, a, &pre_state),
                            None => Value::unknown_int(),
                        };
                        out = out.set(AbsLoc::Var(p), v);
                    }
                    let rv = State::from_pmap(ret_in.clone()).get(&AbsLoc::Var(callee.ret_var));
                    ret_val = Some(match ret_val {
                        Some(acc) => acc.join(&rv),
                        None => rv,
                    });
                }
                let external = !any_internal
                    || self
                        .pre
                        .call_targets(cp)
                        .iter()
                        .any(|&t| self.program.procs[t].is_external);
                if external {
                    let u = Value::unknown_int();
                    ret_val = Some(match ret_val {
                        Some(acc) => acc.join(&u),
                        None => u,
                    });
                }
                match (ret, ret_val) {
                    (Some(lv), Some(v)) => semantics::assign(self.program, &out, lv, &v),
                    _ => out,
                }
            }
            _ => semantics::transfer(self.program, cp, &pre_state),
        };
        // Keep exactly the D̂(cp) bindings.
        let mut out = PMap::new();
        for l in self.du.defs(cp) {
            if let Some(v) = post.get_ref(l) {
                if !v.is_bottom() {
                    out = out.insert(*l, v.clone());
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sga_cfront::parse;
    use sga_domains::Interval;
    use sga_ir::VarId;

    fn var(program: &Program, name: &str) -> VarId {
        program
            .vars
            .iter_enumerated()
            .find(|(_, v)| v.name == name)
            .map(|(i, _)| i)
            .unwrap_or_else(|| panic!("no var {name}"))
    }

    fn exit_value(program: &Program, result: &IntervalResult, name: &str) -> Value {
        // Read at the last definition point of the variable (sparse results
        // are defined exactly at definition points).
        let v = var(program, name);
        let l = AbsLoc::Var(v);
        let mut best = Value::bot();
        for (cp, s) in &result.values {
            let _ = cp;
            if let Some(val) = s.get_ref(&l) {
                best = best.join(val);
            }
        }
        best
    }

    #[test]
    fn counting_loop_all_engines() {
        let p = parse("int main() { int i = 0; while (i < 10) { i = i + 1; } return i; }").unwrap();
        let ret = AbsLoc::Var(p.procs[p.main].ret_var);
        for engine in [Engine::Vanilla, Engine::Base, Engine::Sparse] {
            let r = analyze(&p, engine);
            // Find the Return node's post-state: ret var must be exactly 10.
            let ret_cp = p
                .all_points()
                .find(|cp| matches!(p.cmd(*cp), Cmd::Return(Some(_))))
                .unwrap();
            let v = r.value_at(ret_cp, &ret);
            assert_eq!(v.itv, Interval::constant(10), "{engine:?} got {v:?}");
        }
    }

    #[test]
    fn interprocedural_constant_flows() {
        let p = parse(
            "int add(int a, int b) { return a + b; }
             int main() { int r = add(2, 3); return r; }",
        )
        .unwrap();
        for engine in [Engine::Vanilla, Engine::Base, Engine::Sparse] {
            let r = analyze(&p, engine);
            let v = exit_value(&p, &r, "r");
            assert_eq!(v.itv, Interval::constant(5), "{engine:?}");
        }
    }

    #[test]
    fn pointers_across_engines() {
        let p = parse(
            "int x; int y; int *p;
             int main(int c) {
                if (c) p = &x; else p = &y;
                *p = 42;
                int r = x;
                return r;
             }",
        )
        .unwrap();
        for engine in [Engine::Vanilla, Engine::Base, Engine::Sparse] {
            let r = analyze(&p, engine);
            let v = exit_value(&p, &r, "r");
            // x is either untouched (⊥ joined from init 0? x is global,
            // uninitialized = absent) or 42 via the weak store.
            assert!(
                Interval::constant(42).le(&v.itv),
                "{engine:?}: weak store must reach x: {v:?}"
            );
        }
    }

    #[test]
    fn recursion_terminates_with_widening() {
        let p = parse(
            "int f(int n) { if (n <= 0) return 0; return f(n - 1) + 1; }
             int main() { return f(100); }",
        )
        .unwrap();
        for engine in [Engine::Vanilla, Engine::Base, Engine::Sparse] {
            let r = analyze(&p, engine);
            assert!(r.stats.iterations > 0, "{engine:?}");
        }
    }

    #[test]
    fn sparse_states_are_smaller() {
        let p = parse(
            "int a; int b; int c; int d;
             int main() {
                a = 1; b = 2; c = 3; d = 4;
                int s = a + b + c + d;
                return s;
             }",
        )
        .unwrap();
        let dense = analyze(&p, Engine::Base);
        let sparse = analyze(&p, Engine::Sparse);
        let dense_bindings: usize = dense.values.values().map(State::len).sum();
        let sparse_bindings: usize = sparse.values.values().map(State::len).sum();
        assert!(
            sparse_bindings < dense_bindings,
            "sparse {sparse_bindings} !< dense {dense_bindings}"
        );
    }

    #[test]
    fn malloc_overrun_shape() {
        let p = parse(
            "int main() {
                int *buf = malloc(10);
                int i = 0;
                while (i < 10) { buf[i] = i; i = i + 1; }
                return 0;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        // The store through buf[i] must see offsets [0, 9] and size 10.
        let store_cp = p
            .all_points()
            .filter(|cp| matches!(p.cmd(*cp), Cmd::Assign(sga_ir::LVal::Deref(_), _)))
            .last()
            .unwrap();
        let Cmd::Assign(sga_ir::LVal::Deref(ptr), _) = p.cmd(store_cp) else {
            unreachable!()
        };
        // The pointer temp feeding the store is defined at its own assign
        // node; look through all states for its array block.
        let mut seen = false;
        for s in r.values.values() {
            if let Some(v) = s.get_ref(&AbsLoc::Var(*ptr)) {
                for (_, info) in v.arr.iter() {
                    seen = true;
                    assert!(
                        info.offset.le(&Interval::range(0, 9)),
                        "offset {:?}",
                        info.offset
                    );
                    assert_eq!(info.size, Interval::constant(10));
                }
            }
        }
        assert!(seen, "no array block reached the store pointer");
    }
}

#[cfg(test)]
mod semi_sparse_tests {
    use super::*;
    use sga_cfront::parse;

    /// A program with both top-level and address-taken flows.
    const SRC: &str = "
        int x; int y; int *p;
        int main(int c) {
            int top = 3;
            if (c) p = &x; else p = &y;
            *p = top;
            int t2 = top + 1;
            int r = x + t2;
            return r;
        }";

    #[test]
    fn semi_sparse_coarsens_address_taken_only() {
        let program = parse(SRC).unwrap();
        let precise = Pipeline::prepare(&program, AnalyzeOptions::default());
        let pre = crate::preanalysis::run(&program);
        let coarse_state = crate::preanalysis::coarsen_semi_sparse(&program, &pre.state);
        let coarse_du = crate::defuse::compute_with_state(&program, &pre, &coarse_state);
        // Semi-sparse def/use sets are at least as big everywhere…
        for cp in program.all_points() {
            for l in precise.du.defs(cp) {
                assert!(
                    coarse_du.defs(cp).contains(l),
                    "semi-sparse D̂ lost {l:?} at {cp}"
                );
            }
        }
        // …and strictly bigger at the store through p (it may now hit every
        // address-taken location, not just {x, y}).
        let store = program
            .all_points()
            .find(|cp| matches!(program.cmd(*cp), Cmd::Assign(sga_ir::LVal::Deref(_), _)))
            .unwrap();
        assert!(coarse_du.defs(store).len() >= precise.du.defs(store).len());
    }

    #[test]
    fn semi_sparse_results_match_precise_sparse() {
        let program = parse(SRC).unwrap();
        let precise = analyze_with(&program, Engine::Sparse, AnalyzeOptions::default());
        let semi = analyze_with(
            &program,
            Engine::Sparse,
            AnalyzeOptions {
                semi_sparse: true,
                ..AnalyzeOptions::default()
            },
        );
        // Coarser dependencies are still a safe approximation (Def. 5): the
        // computed values agree on every location the precise run binds.
        for (cp, st) in &precise.values {
            if matches!(program.cmd(*cp), Cmd::Call { .. }) {
                continue;
            }
            for (l, v) in st.iter() {
                use sga_domains::Lattice as _;
                if v.is_bottom() {
                    continue;
                }
                assert_eq!(
                    *v,
                    semi.value_at(*cp, l),
                    "semi-sparse changed the result at {cp} {l:?}"
                );
            }
        }
        // But it pays for the coarseness with more dependency edges.
        assert!(
            semi.stats.dep_edges >= precise.stats.dep_edges,
            "semi {} < precise {}",
            semi.stats.dep_edges,
            precise.stats.dep_edges
        );
    }
}
