//! The dense worklist fixpoint engine — the baseline the sparse analysis is
//! derived from.
//!
//! Computes `lfp F̂` where `F̂(X)(c) = f̂_c(⊔_{c' ↪ c} X(c'))` (equation (3)
//! of the paper), generalized with per-edge transfers for the
//! interprocedural edges. One engine serves both the `vanilla` and `base`
//! analyzers (they differ only in their [`DenseSpec::edge`] implementation)
//! and both the interval and octagon instances (they differ in the state
//! type).
//!
//! The solve runs an ascending phase with widening at the ICFG's widening
//! points, then bounded descending (narrowing) rounds — the "conventional
//! widening operator" setup of §6.1.

use crate::budget::Budget;
use crate::icfg::{Icfg, InEdge};
use crate::widening::WideningPlan;
use sga_domains::Thresholds;
use sga_ir::{Cp, Program};
use sga_utils::FxHashMap;
use std::collections::BTreeSet;

/// The parts of a dense analysis that vary per instance/engine.
pub trait DenseSpec {
    /// Abstract state attached to each control point.
    type St: Clone + PartialEq;

    /// ⊥ — the state of a point before any information arrives.
    fn bottom(&self) -> Self::St;

    /// The state flowing into `main`'s entry.
    fn initial(&self) -> Self::St;

    /// The node transfer function `f̂_c`.
    fn transfer(&self, cp: Cp, input: &Self::St) -> Self::St;

    /// The edge transfer into `dst`; `lookup` gives access to other points'
    /// post-states (the localized return join needs the call site's state).
    fn edge(
        &self,
        dst: Cp,
        edge: &InEdge,
        src_post: &Self::St,
        lookup: &dyn Fn(Cp) -> Option<Self::St>,
    ) -> Self::St;

    /// Least upper bound.
    fn join(&self, a: &Self::St, b: &Self::St) -> Self::St;

    /// Widening.
    fn widen(&self, a: &Self::St, b: &Self::St) -> Self::St;

    /// Threshold widening; defaults to ignoring the thresholds.
    fn widen_with(&self, a: &Self::St, b: &Self::St, thresholds: &Thresholds) -> Self::St {
        let _ = thresholds;
        self.widen(a, b)
    }

    /// Narrowing.
    fn narrow(&self, a: &Self::St, b: &Self::St) -> Self::St;
}

/// The dense fixpoint: post-states per control point.
#[derive(Debug)]
pub struct DenseResult<St> {
    /// Post-state of every control point (absent = ⊥).
    pub post: FxHashMap<Cp, St>,
    /// Node evaluations during the ascending phase.
    pub iterations: usize,
    /// Descending rounds executed.
    pub narrowing_rounds: usize,
    /// Whether the analysis budget ran out. A degraded result is still a
    /// sound post-fixpoint — the remaining ascent used immediate plain
    /// widening and the descending phase was skipped — but it is less
    /// precise than the unbounded fixpoint.
    pub degraded: bool,
}

impl<St> DenseResult<St> {
    /// Post-state at `cp`, if any information reached it.
    pub fn post_at(&self, cp: Cp) -> Option<&St> {
        self.post.get(&cp)
    }
}

/// Runs the dense analysis with the naive widening plan. See [`solve_with`].
pub fn solve<S: DenseSpec>(program: &Program, icfg: &Icfg, spec: &S) -> DenseResult<S::St> {
    solve_with(
        program,
        icfg,
        spec,
        &WideningPlan::naive(),
        &Budget::unbounded(),
    )
}

/// Runs the dense analysis to its (narrowed) fixpoint.
///
/// `plan` selects the widening strategy: the first `plan.delay` *changing*
/// updates at each widening point are plain joins, after which threshold
/// widening ([`DenseSpec::widen_with`]) takes over.
///
/// `budget` bounds the ascending phase. On exhaustion the solve *degrades
/// soundly*: every further widening-point update applies the plain widening
/// operator immediately (no delay, no thresholds), the ascent runs to
/// quiescence, and the descending phase is skipped. The returned
/// post-fixpoint over-approximates the unbounded one and `degraded` is set.
///
/// # Panics
///
/// Panics if the ascending phase exceeds its internal iteration backstop
/// even after degradation — which indicates a widening bug, not a big
/// program.
pub fn solve_with<S: DenseSpec>(
    program: &Program,
    icfg: &Icfg,
    spec: &S,
    plan: &WideningPlan,
    budget: &Budget,
) -> DenseResult<S::St> {
    let main_entry = Cp::new(program.main, program.procs[program.main].entry);
    let mut post: FxHashMap<Cp, S::St> = FxHashMap::default();
    let mut worklist: BTreeSet<(u32, Cp)> = BTreeSet::new();
    let all_points: Vec<Cp> = program
        .all_points()
        .filter(|cp| !program.procs[cp.proc].is_external)
        .collect();
    for &cp in &all_points {
        worklist.insert((icfg.priority[&cp], cp));
    }

    let compute_in = |post: &FxHashMap<Cp, S::St>, cp: Cp| -> S::St {
        let mut acc = if cp == main_entry {
            spec.initial()
        } else {
            spec.bottom()
        };
        let lookup = |q: Cp| post.get(&q).cloned();
        for e in icfg.incoming(cp) {
            if let Some(src_post) = post.get(&e.src) {
                let v = spec.edge(cp, e, src_post, &lookup);
                acc = spec.join(&acc, &v);
            }
        }
        acc
    };

    let backstop = 2000usize.saturating_mul(all_points.len()).max(100_000);
    let mut iterations = 0usize;
    let mut meter = budget.start();
    let mut degraded = false;
    // Changing updates seen per widening point, for delayed widening.
    let mut widen_delay: FxHashMap<Cp, u32> = FxHashMap::default();
    while let Some(&(prio, cp)) = worklist.iter().next() {
        worklist.remove(&(prio, cp));
        iterations += 1;
        assert!(
            iterations <= backstop,
            "dense fixpoint exceeded {backstop} iterations: widening failure at {cp}"
        );
        degraded |= meter.step();
        let input = compute_in(&post, cp);
        let mut new_post = spec.transfer(cp, &input);
        let old = post.get(&cp);
        if icfg.widen_points.contains(&cp) {
            if let Some(old) = old {
                let joined = spec.join(old, &new_post);
                if joined == *old {
                    new_post = joined;
                } else if degraded {
                    // Over budget: widen immediately with the plain operator
                    // so every still-rising chain stabilizes in one step.
                    new_post = spec.widen(old, &new_post);
                } else {
                    let seen = widen_delay.entry(cp).or_insert(0);
                    if *seen < plan.delay {
                        *seen += 1;
                        new_post = joined;
                    } else {
                        new_post = spec.widen_with(old, &new_post, &plan.thresholds);
                    }
                }
            }
        }
        let changed = old != Some(&new_post);
        if changed {
            post.insert(cp, new_post);
            for &t in icfg.targets(cp) {
                worklist.insert((icfg.priority[&t], t));
            }
        }
    }

    // Descending (narrowing) phase: change-driven from above — monotone, so
    // skipping points whose inputs did not change is exact. A per-point cap
    // bounds descent. Skipped entirely when the budget ran out: the
    // ascending result is already a post-fixpoint, and descending work is
    // exactly the precision-chasing the budget said we cannot afford.
    const MAX_DESCENDS_PER_POINT: u8 = 4;
    let mut narrowing_rounds = 0usize;
    let mut desc_count: FxHashMap<Cp, u8> = FxHashMap::default();
    let mut worklist: BTreeSet<(u32, Cp)> = BTreeSet::new();
    if !degraded {
        for &cp in &all_points {
            worklist.insert((icfg.priority[&cp], cp));
        }
    }
    while let Some(&(prio, cp)) = worklist.iter().next() {
        worklist.remove(&(prio, cp));
        let count = desc_count.entry(cp).or_insert(0);
        if *count >= MAX_DESCENDS_PER_POINT {
            continue;
        }
        *count += 1;
        narrowing_rounds += 1;
        let input = compute_in(&post, cp);
        let candidate = spec.transfer(cp, &input);
        let new_post = match post.get(&cp) {
            Some(old) if icfg.widen_points.contains(&cp) => {
                // Threshold widening can overshoot finitely and `narrow`
                // refines only infinite bounds, so under a threshold plan a
                // candidate below the stored state (tested via join) is
                // accepted outright — a capped descending-iteration step.
                if !plan.thresholds.is_empty() && spec.join(&candidate, old) == *old {
                    candidate
                } else {
                    spec.narrow(old, &candidate)
                }
            }
            _ => candidate,
        };
        if post.get(&cp) != Some(&new_post) {
            post.insert(cp, new_post);
            for &t in icfg.targets(cp) {
                worklist.insert((icfg.priority[&t], t));
            }
        }
    }

    DenseResult {
        post,
        iterations,
        narrowing_rounds,
        degraded,
    }
}
