//! Path-condition support for alarm triage: dominator trees, dominating
//! `assume` guard chains, and sound interval evaluation of guard
//! conjunctions.
//!
//! The interval and octagon triage layers reason about *values*; this
//! module adds the *path* dimension. For an alarm at control point `A`,
//! every `assume` node that **dominates** `A` was passed — with the branch
//! polarity baked into its condition — on *every* execution reaching `A`.
//! If the conjunction of those dominating guards is infeasible under a
//! sound interval evaluation of the analysis result, no execution reaches
//! `A` and the alarm can be discharged (`path_infeasible`).
//!
//! Why only *dominating* assumes: a guard on merely *some* path to `A`
//! constrains only that path; using it to refute `A` would be unsound the
//! moment a second path exists. Dominance is exactly the "every path"
//! property the argument needs, and the dominator tree gives the whole
//! chain in O(depth) per alarm ([`ProcPaths::guard_chain`]).
//!
//! # Soundness of the queries
//!
//! Refutations must come from real constraints, so the value queries here
//! are deliberately *more* conservative than the checker's:
//!
//! * [`value_before`] walks backwards to the nearest post-states binding
//!   the variable and joins them — if **any** backwards path reaches the
//!   procedure entry unbound, the query answers ⊤ (`None`), never ⊥;
//! * values carrying pointer/array/procedure components evaluate to ⊤
//!   numerically (a concrete address is not in the numeric interval);
//! * a ⊥ interval from a query is refused — ⊥ would claim unreachability,
//!   which a query must not conclude on its own.
//!
//! Sparse results bind `assume` refinements (`D̂` includes the directly
//! refined locations), so the backwards walk answers identically over
//! dense and sparse results — the golden corpus pins this.

use crate::interval::IntervalResult;
use sga_domains::{AbsLoc, Interval, Lattice, Value};
use sga_ir::{
    pretty, BinOp, Cmd, Cond, Cp, Expr, LVal, NodeId, Proc, ProcId, Program, RelOp, UnOp, VarId,
    VarKind,
};
use sga_utils::graph::reverse_postorder;
use sga_utils::{FxHashMap, FxHashSet, Idx};

// ---------------------------------------------------------------------------
// Dominator tree
// ---------------------------------------------------------------------------

const UNREACHABLE: u32 = u32::MAX;

/// An immediate-dominator tree of one procedure's CFG, built once with the
/// Cooper–Harvey–Kennedy iteration over the reverse postorder and then
/// queried in O(tree depth).
#[derive(Clone, Debug)]
pub struct DomTree {
    /// `idom[v]` — immediate dominator; the entry points at itself and
    /// unreachable nodes carry [`UNREACHABLE`].
    idom: Vec<u32>,
    entry: u32,
}

impl DomTree {
    /// Builds the dominator tree of `proc`'s CFG.
    pub fn build(proc: &Proc) -> DomTree {
        let n = proc.num_nodes();
        let entry = proc.entry.index();
        let rpo = reverse_postorder(&proc.cfg_view(), entry);
        let mut rpo_num = vec![usize::MAX; n];
        for (i, &v) in rpo.iter().enumerate() {
            rpo_num[v] = i;
        }
        let mut idom: Vec<u32> = vec![UNREACHABLE; n];
        idom[entry] = entry as u32;
        let mut changed = true;
        while changed {
            changed = false;
            for &v in rpo.iter().skip(1) {
                let mut new_idom: Option<usize> = None;
                for &p in proc.preds_of(NodeId::new(v)) {
                    let p = p.index();
                    if idom[p] == UNREACHABLE {
                        continue;
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => intersect(&idom, &rpo_num, cur, p),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[v] != ni as u32 {
                        idom[v] = ni as u32;
                        changed = true;
                    }
                }
            }
        }
        DomTree {
            idom,
            entry: entry as u32,
        }
    }

    /// The immediate dominator of `n` (`None` for the entry and for nodes
    /// unreachable from it).
    pub fn idom(&self, n: NodeId) -> Option<NodeId> {
        let i = n.index();
        if i as u32 == self.entry || self.idom[i] == UNREACHABLE {
            return None;
        }
        Some(NodeId::new(self.idom[i] as usize))
    }

    /// Whether every entry→`target` path passes through `dom`
    /// (`dom == target` is trivially true, and an unreachable `target` is
    /// vacuously dominated by everything).
    pub fn dominates(&self, dom: NodeId, target: NodeId) -> bool {
        if dom == target || dom.index() as u32 == self.entry {
            return true;
        }
        let t = target.index();
        if self.idom[t] == UNREACHABLE {
            return true;
        }
        let d = dom.index() as u32;
        let mut n = t as u32;
        while n != self.entry {
            let p = self.idom[n as usize];
            if p == d {
                return true;
            }
            if p == n {
                break;
            }
            n = p;
        }
        false
    }

    /// The strict dominators of `n`, nearest first, ending at the entry.
    /// Empty for the entry itself and for unreachable nodes.
    pub fn strict_dominators(&self, n: NodeId) -> Vec<NodeId> {
        let mut out = Vec::new();
        let mut cur = n;
        while let Some(d) = self.idom(cur) {
            out.push(d);
            cur = d;
        }
        out
    }
}

/// CHK two-finger intersection: climb the deeper (larger RPO number) side.
fn intersect(idom: &[u32], rpo_num: &[usize], mut a: usize, mut b: usize) -> usize {
    while a != b {
        while rpo_num[a] > rpo_num[b] {
            a = idom[a] as usize;
        }
        while rpo_num[b] > rpo_num[a] {
            b = idom[b] as usize;
        }
    }
    a
}

// ---------------------------------------------------------------------------
// Guard sites
// ---------------------------------------------------------------------------

/// Which side of its branch an `assume` node sits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Polarity {
    /// First successor of a two-way branch: the condition held.
    Then,
    /// Second successor: the negated condition held.
    Else,
    /// Not part of a recognizable two-way branch (switch arms, synthetic
    /// assumes).
    Assume,
}

impl Polarity {
    /// Stable label used in proving packs.
    pub fn label(self) -> &'static str {
        match self {
            Polarity::Then => "then",
            Polarity::Else => "else",
            Polarity::Assume => "assume",
        }
    }
}

/// One `assume` node with its source line and branch polarity.
#[derive(Clone, Debug)]
pub struct GuardSite {
    /// The assume node.
    pub node: NodeId,
    /// Source line of the branch.
    pub line: u32,
    /// Which side of the branch the assume is.
    pub polarity: Polarity,
}

/// Per-procedure path structures: the dominator tree plus an index of
/// every `assume` site keyed by node, so the dominating guard chain of an
/// alarm is one O(depth) tree walk.
#[derive(Clone, Debug)]
pub struct ProcPaths {
    /// The memoized dominator tree.
    pub dom: DomTree,
    guards: FxHashMap<NodeId, GuardSite>,
}

impl ProcPaths {
    /// Builds the dominator tree and the assume-site index for `proc`.
    pub fn build(proc: &Proc) -> ProcPaths {
        let dom = DomTree::build(proc);
        let mut guards = FxHashMap::default();
        for (nid, node) in proc.nodes.iter_enumerated() {
            if !matches!(node.cmd, Cmd::Assume(_)) {
                continue;
            }
            // The frontend lowers a two-way branch to one pred with the
            // successor order [then, else]; recover the polarity from it.
            let preds = proc.preds_of(nid);
            let polarity = match preds {
                [p] => {
                    let succs = proc.succs_of(*p);
                    let both_assume = succs.len() == 2
                        && succs
                            .iter()
                            .all(|&s| matches!(proc.nodes[s].cmd, Cmd::Assume(_)));
                    if both_assume && succs[0] == nid {
                        Polarity::Then
                    } else if both_assume && succs[1] == nid {
                        Polarity::Else
                    } else {
                        Polarity::Assume
                    }
                }
                _ => Polarity::Assume,
            };
            guards.insert(
                nid,
                GuardSite {
                    node: nid,
                    line: node.line,
                    polarity,
                },
            );
        }
        ProcPaths { dom, guards }
    }

    /// The chain of `assume` sites strictly dominating `n`, outermost
    /// (entry-side) first.
    pub fn guard_chain(&self, n: NodeId) -> Vec<&GuardSite> {
        let mut chain: Vec<&GuardSite> = self
            .dom
            .strict_dominators(n)
            .into_iter()
            .filter_map(|d| self.guards.get(&d))
            .collect();
        chain.reverse();
        chain
    }
}

/// Lazily-built, memoized [`ProcPaths`] per procedure — one triage run
/// builds each tree at most once no matter how many alarms share it.
#[derive(Debug, Default)]
pub struct PathIndex {
    procs: FxHashMap<ProcId, ProcPaths>,
}

impl PathIndex {
    /// Creates an empty index.
    pub fn new() -> PathIndex {
        PathIndex::default()
    }

    /// The path structures of `pid`, built on first use.
    pub fn proc_paths(&mut self, program: &Program, pid: ProcId) -> &ProcPaths {
        self.procs
            .entry(pid)
            .or_insert_with(|| ProcPaths::build(&program.procs[pid]))
    }
}

// ---------------------------------------------------------------------------
// Sound value queries
// ---------------------------------------------------------------------------

/// The value of `x` flowing into `cp`, as a refutation-grade
/// over-approximation: the join of the nearest binding post-states
/// backwards through the CFG. `None` means ⊤ — some backwards path
/// reaches the procedure entry (or an unexplored corner) without a
/// binding, or the join is ⊥, so nothing may be concluded.
pub fn value_before(program: &Program, result: &IntervalResult, cp: Cp, x: VarId) -> Option<Value> {
    let l = AbsLoc::Var(x);
    let proc = &program.procs[cp.proc];
    let mut stack: Vec<NodeId> = proc.preds_of(cp.node).to_vec();
    if stack.is_empty() {
        return None;
    }
    let mut visited: FxHashSet<NodeId> = stack.iter().copied().collect();
    let mut acc = Value::bot();
    while let Some(n) = stack.pop() {
        if let Some(v) = result
            .values
            .get(&Cp::new(cp.proc, n))
            .and_then(|s| s.get_ref(&l))
        {
            if !v.is_bottom() {
                acc = acc.join(v);
                continue;
            }
        }
        let preds = proc.preds_of(n);
        if preds.is_empty() {
            // Reached the entry with the variable unbound.
            return None;
        }
        for &p in preds {
            if visited.insert(p) {
                stack.push(p);
            }
        }
    }
    (!acc.is_bottom()).then_some(acc)
}

/// The numeric interval of the value, or `None` (⊤) when the value has
/// pointer/array/procedure components (a concrete address is not in the
/// interval) or a ⊥ interval (refuse ⊥ conclusions from queries).
pub fn numeric_itv(v: &Value) -> Option<Interval> {
    if !v.ptr.is_empty() || !v.arr.is_empty() || !v.procs.is_empty() || v.itv.is_bottom() {
        return None;
    }
    Some(v.itv)
}

fn unop_itv(op: UnOp, v: &Interval) -> Interval {
    match op {
        UnOp::Neg => v.neg(),
        UnOp::Not => v.cmp_result(RelOp::Eq, &Interval::constant(0)),
        UnOp::BitNot => v.add(&Interval::constant(1)).neg(),
    }
}

fn binop_itv(op: BinOp, ia: &Interval, ib: &Interval) -> Interval {
    match op {
        BinOp::Add => ia.add(ib),
        BinOp::Sub => ia.sub(ib),
        BinOp::Mul => ia.mul(ib),
        BinOp::Div => ia.div(ib),
        BinOp::Mod => ia.rem(ib),
        BinOp::Cmp(r) => ia.cmp_result(r, ib),
        BinOp::And | BinOp::Or => Interval::range(0, 1),
        BinOp::Bits => Interval::top(),
    }
}

/// Evaluates a pure expression to an interval with a caller-supplied
/// variable environment; anything the environment cannot answer is ⊤.
/// Leaves never produce ⊥, so neither does any derived interval — the
/// caller may treat ⊥ (reachable only through `filter` refinement) as a
/// genuine contradiction.
fn eval_itv_env(e: &Expr, lookup: &dyn Fn(VarId) -> Interval) -> Interval {
    match e {
        Expr::Const(n) => Interval::constant(*n),
        Expr::Var(x) => lookup(*x),
        Expr::Unop(op, a) => unop_itv(*op, &eval_itv_env(a, lookup)),
        Expr::Binop(op, a, b) => binop_itv(*op, &eval_itv_env(a, lookup), &eval_itv_env(b, lookup)),
        _ => Interval::top(),
    }
}

/// Evaluates a pure expression to an interval against the sound
/// before-state at `cp` (via [`value_before`]). ⊤ wherever the result
/// does not constrain the expression.
pub fn eval_itv_before(program: &Program, result: &IntervalResult, cp: Cp, e: &Expr) -> Interval {
    eval_itv_env(e, &|x| {
        value_before(program, result, cp, x)
            .as_ref()
            .and_then(numeric_itv)
            .unwrap_or_else(Interval::top)
    })
}

/// Whether the guard condition at `assume` node `g` can never hold on its
/// own inputs: both operands evaluate to non-⊤-garbage intervals whose
/// comparison is *definitely false*. A dead dominating guard makes every
/// node it dominates unreachable. Returns the refuting fact, rendered.
pub fn guard_is_dead(
    program: &Program,
    result: &IntervalResult,
    pid: ProcId,
    g: NodeId,
) -> Option<String> {
    let proc = &program.procs[pid];
    let Cmd::Assume(cond) = &proc.nodes[g].cmd else {
        return None;
    };
    let cp = Cp::new(pid, g);
    let li = eval_itv_before(program, result, cp, &cond.lhs);
    let ri = eval_itv_before(program, result, cp, &cond.rhs);
    if li.is_bottom() || ri.is_bottom() {
        return None;
    }
    if li.cmp_result(cond.op, &ri) != Interval::constant(0) {
        return None;
    }
    Some(format!(
        "guard {} never holds: {} in {li}, {} in {ri}",
        pretty::cond(program, cond),
        pretty::expr(program, &cond.lhs),
        pretty::expr(program, &cond.rhs),
    ))
}

// ---------------------------------------------------------------------------
// Guard stability and conjunction refutation
// ---------------------------------------------------------------------------

/// Whether every variable of the expression is a non-address-taken
/// local/temp/param/return slot of `pid`, and the expression reads no
/// memory (no dereference, field or unknown) — the shapes whose value a
/// direct-write scan fully accounts for.
fn expr_is_stable_shape(program: &Program, pid: ProcId, e: &Expr) -> bool {
    match e {
        Expr::Const(_) => true,
        Expr::Var(x) => {
            let info = &program.vars[*x];
            !info.address_taken
                && matches!(
                    info.kind,
                    VarKind::Local(o) | VarKind::Param(o) | VarKind::Temp(o) | VarKind::Return(o)
                        if o == pid
                )
        }
        Expr::Unop(_, a) => expr_is_stable_shape(program, pid, a),
        Expr::Binop(_, a, b) => {
            expr_is_stable_shape(program, pid, a) && expr_is_stable_shape(program, pid, b)
        }
        _ => false,
    }
}

/// Nodes of `proc` from which `target` is reachable (including `target`).
fn backward_region(proc: &Proc, target: NodeId) -> FxHashSet<NodeId> {
    let mut seen: FxHashSet<NodeId> = FxHashSet::default();
    let mut stack = vec![target];
    seen.insert(target);
    while let Some(n) = stack.pop() {
        for &p in proc.preds_of(n) {
            if seen.insert(p) {
                stack.push(p);
            }
        }
    }
    seen
}

/// Whether guard `g`'s condition still holds, with the same variable
/// values, at `alarm`: its variables are procedure-owned scalars
/// ([`expr_is_stable_shape`]) with **no direct write on any path between
/// the guard and the alarm** (forward-reachable from `g`'s successors ∩
/// backward-reachable to `alarm` — loop-carried rebindings land in this
/// region and disqualify the guard).
pub fn guard_is_stable(program: &Program, pid: ProcId, g: NodeId, alarm: NodeId) -> bool {
    let proc = &program.procs[pid];
    let Cmd::Assume(cond) = &proc.nodes[g].cmd else {
        return false;
    };
    if !expr_is_stable_shape(program, pid, &cond.lhs)
        || !expr_is_stable_shape(program, pid, &cond.rhs)
    {
        return false;
    }
    let mut vars: Vec<VarId> = Vec::new();
    cond.lhs.vars(&mut vars);
    cond.rhs.vars(&mut vars);
    vars.sort_unstable();
    vars.dedup();

    let back = backward_region(proc, alarm);
    // Forward scan from the guard's successors, pruned to the alarm's
    // backward region: exactly the nodes on some guard→alarm path.
    let mut stack: Vec<NodeId> = proc
        .succs_of(g)
        .iter()
        .copied()
        .filter(|s| back.contains(s))
        .collect();
    let mut seen: FxHashSet<NodeId> = stack.iter().copied().collect();
    while let Some(n) = stack.pop() {
        let written = match &proc.nodes[n].cmd {
            Cmd::Assign(LVal::Var(v), _) | Cmd::Alloc(LVal::Var(v), _) => vars.contains(v),
            Cmd::Call {
                ret: Some(LVal::Var(v)),
                ..
            } => vars.contains(v),
            _ => false,
        };
        if written {
            return false;
        }
        for &s in proc.succs_of(n) {
            if back.contains(&s) && seen.insert(s) {
                stack.push(s);
            }
        }
    }
    true
}

/// Tries to refute the conjunction of stable dominating guards at the
/// alarm point `cp`: each variable is seeded with its sound interval at
/// the alarm (⊤ when unknown) and the guard conditions are applied as
/// `filter` refinements to a local fixpoint. A variable refined to ⊥ — or
/// a condition that can no longer hold — proves no concrete valuation
/// satisfies every guard, so no execution reaches `cp`. Returns the
/// refuting fact, rendered.
pub fn refute_conjunction(
    program: &Program,
    result: &IntervalResult,
    cp: Cp,
    guards: &[(NodeId, &Cond)],
) -> Option<String> {
    let mut vars: Vec<VarId> = Vec::new();
    for (_, cond) in guards {
        cond.lhs.vars(&mut vars);
        cond.rhs.vars(&mut vars);
    }
    vars.sort_unstable();
    vars.dedup();

    let mut env: FxHashMap<VarId, Interval> = FxHashMap::default();
    for &x in &vars {
        let seed = value_before(program, result, cp, x)
            .as_ref()
            .and_then(numeric_itv)
            .unwrap_or_else(Interval::top);
        env.insert(x, seed);
    }

    // A handful of passes reaches the local fixpoint on any realistic
    // chain; the pass count only affects completeness, never soundness.
    for _ in 0..(2 * guards.len() + 2) {
        let mut changed = false;
        for (_, cond) in guards {
            let lookup = |x: VarId| env.get(&x).cloned().unwrap_or_else(Interval::top);
            let li = eval_itv_env(&cond.lhs, &lookup);
            let ri = eval_itv_env(&cond.rhs, &lookup);
            if li.cmp_result(cond.op, &ri) == Interval::constant(0) {
                return Some(format!(
                    "guards conflict: {} in {li} cannot satisfy {}",
                    pretty::expr(program, &cond.lhs),
                    pretty::cond(program, cond),
                ));
            }
            if let Expr::Var(x) = &cond.lhs {
                let refined = li.filter(cond.op, &ri);
                if refined.is_bottom() {
                    return Some(format!(
                        "guards conflict: {} in {li} refines to empty under {}",
                        program.vars[*x].name,
                        pretty::cond(program, cond),
                    ));
                }
                if refined != li {
                    env.insert(*x, refined);
                    changed = true;
                }
            }
            if let Expr::Var(y) = &cond.rhs {
                let lookup = |x: VarId| env.get(&x).cloned().unwrap_or_else(Interval::top);
                let li = eval_itv_env(&cond.lhs, &lookup);
                let ry = lookup(*y);
                let refined = ry.filter(cond.op.swap(), &li);
                if refined.is_bottom() {
                    return Some(format!(
                        "guards conflict: {} in {ry} refines to empty under {}",
                        program.vars[*y].name,
                        pretty::cond(program, cond),
                    ));
                }
                if refined != ry {
                    env.insert(*y, refined);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }
    None
}

/// Renders a guard chain as a proving pack: `polarity@line(cond)` terms
/// joined with ` & `, in entry→alarm order.
pub fn render_chain(program: &Program, proc: &Proc, chain: &[&GuardSite]) -> String {
    chain
        .iter()
        .map(|g| {
            let cond = match &proc.nodes[g.node].cmd {
                Cmd::Assume(c) => pretty::cond(program, c),
                _ => "?".to_string(),
            };
            format!("{}@{}({})", g.polarity.label(), g.line, cond)
        })
        .collect::<Vec<_>>()
        .join(" & ")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::{analyze, Engine};
    use sga_cfront::parse;

    /// The pre-existing per-query dominance algorithm (entry-removal
    /// reachability), kept here as the reference the memoized tree is
    /// pinned against.
    fn reference_dominates(proc: &Proc, dom: NodeId, target: NodeId) -> bool {
        if dom == target || proc.entry == dom {
            return true;
        }
        let mut stack = vec![proc.entry];
        let mut visited: FxHashSet<NodeId> = stack.iter().copied().collect();
        while let Some(n) = stack.pop() {
            if n == dom {
                continue;
            }
            if n == target {
                return false;
            }
            for &s in proc.succs_of(n) {
                if visited.insert(s) {
                    stack.push(s);
                }
            }
        }
        true
    }

    const PROGRAMS: &[&str] = &[
        "int main() { int x = 0; while (x < 10) { x = x + 1; } return x; }",
        "int main(int c) {
            int x = 0;
            if (c > 0) { x = 1; } else { x = 2; }
            while (x < 8) { if (x > 3) { x = x + 2; } x = x + 1; }
            return x;
         }",
        "int f(int n) { if (n <= 0) return 0; return f(n - 1) + 1; }
         int main(int c) { if (c) { return f(3); } return f(4); }",
        "int main(int c) {
            if (c) { return 1; }
            int y = 0;
            while (y < 3) { y = y + 1; if (y == 2) { return y; } }
            return y;
         }",
    ];

    #[test]
    fn dom_tree_matches_reference_on_all_pairs() {
        for src in PROGRAMS {
            let p = parse(src).unwrap();
            for proc in p.procs.iter().filter(|pr| !pr.is_external) {
                let tree = DomTree::build(proc);
                for a in proc.nodes.indices() {
                    for b in proc.nodes.indices() {
                        assert_eq!(
                            tree.dominates(a, b),
                            reference_dominates(proc, a, b),
                            "{}: dominates({a}, {b}) diverged in {}",
                            src,
                            proc.name
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn entry_dominates_everything_and_chain_ends_at_entry() {
        let p = parse(PROGRAMS[1]).unwrap();
        let proc = &p.procs[p.main];
        let tree = DomTree::build(proc);
        for n in proc.nodes.indices() {
            assert!(tree.dominates(proc.entry, n));
            let chain = tree.strict_dominators(n);
            if n != proc.entry && tree.idom(n).is_some() {
                assert_eq!(chain.last(), Some(&proc.entry), "chain of {n}: {chain:?}");
            }
        }
    }

    #[test]
    fn guard_chain_collects_dominating_assumes_with_polarity() {
        let p = parse(
            "int main(int n) {
                int r = 0;
                if (n > 0) {
                    if (n < 10) { r = 1; } else { r = 2; }
                }
                return r;
             }",
        )
        .unwrap();
        let proc = &p.procs[p.main];
        let paths = ProcPaths::build(proc);
        // The `r = 2` node sits under then(n > 0) and else(!(n < 10)).
        let r2 = proc
            .nodes
            .iter_enumerated()
            .find(|(_, nd)| matches!(&nd.cmd, Cmd::Assign(LVal::Var(v), Expr::Const(2)) if p.vars[*v].name == "r"))
            .map(|(n, _)| n)
            .expect("r = 2 node");
        let chain = paths.guard_chain(r2);
        assert_eq!(chain.len(), 2, "{chain:?}");
        assert_eq!(chain[0].polarity, Polarity::Then);
        assert_eq!(chain[1].polarity, Polarity::Else);
        let rendered = render_chain(&p, proc, &chain);
        assert!(
            rendered.contains("then@") && rendered.contains("else@"),
            "{rendered}"
        );
        assert!(rendered.contains("n > 0"), "{rendered}");
    }

    #[test]
    fn value_before_refuses_unbound_paths() {
        let p = parse(
            "int main(int c) {
                int x = 0;
                if (c) { x = 5; }
                return x;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let proc = &p.procs[p.main];
        let x = p
            .vars
            .iter_enumerated()
            .find(|(_, v)| v.name == "x")
            .map(|(i, _)| i)
            .unwrap();
        let ret = proc
            .nodes
            .iter_enumerated()
            .find(|(_, nd)| matches!(nd.cmd, Cmd::Return(Some(_))))
            .map(|(n, _)| n)
            .unwrap();
        let v = value_before(&p, &r, Cp::new(p.main, ret), x);
        let itv = v.as_ref().and_then(numeric_itv).expect("x is bound");
        // Join over both arms: [0,0] ⊔ [5,5].
        assert!(itv.contains(0) && itv.contains(5), "{itv}");
    }

    #[test]
    fn guard_stability_rejects_loop_carried_writes() {
        let p = parse(
            "int main(int n) {
                int i = 0;
                if (n > 0) {
                    while (i < n) { i = i + 1; }
                }
                return i;
             }",
        )
        .unwrap();
        let proc = &p.procs[p.main];
        let paths = ProcPaths::build(proc);
        // The loop-body increment is guarded by assume(i < n), which is NOT
        // stable w.r.t. itself-downstream: `i` is written inside the region.
        let inc = proc
            .nodes
            .iter_enumerated()
            .find(|(_, nd)| {
                matches!(&nd.cmd, Cmd::Assign(LVal::Var(v), Expr::Binop(BinOp::Add, _, _)) if p.vars[*v].name == "i")
            })
            .map(|(n, _)| n)
            .expect("i = i + 1 node");
        let chain = paths.guard_chain(inc);
        let loop_guard = chain
            .iter()
            .find(
                |g| matches!(&proc.nodes[g.node].cmd, Cmd::Assume(c) if matches!(c.op, RelOp::Lt)),
            )
            .expect("loop guard dominates the increment");
        assert!(
            !guard_is_stable(&p, p.main, loop_guard.node, inc),
            "loop-carried guard must not be stable"
        );
        // The outer n > 0 guard is stable: n is never written.
        let outer = chain
            .iter()
            .find(
                |g| matches!(&proc.nodes[g.node].cmd, Cmd::Assume(c) if matches!(c.op, RelOp::Gt)),
            )
            .expect("outer guard");
        assert!(guard_is_stable(&p, p.main, outer.node, inc));
    }

    #[test]
    fn contradictory_conjunction_is_refuted() {
        let p = parse(
            "int main(int n) {
                int r = 0;
                if (n > 5) {
                    if (n < 3) { r = 1; }
                }
                return r;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let proc = &p.procs[p.main];
        let paths = ProcPaths::build(proc);
        let r1 = proc
            .nodes
            .iter_enumerated()
            .find(|(_, nd)| matches!(&nd.cmd, Cmd::Assign(LVal::Var(v), Expr::Const(1)) if p.vars[*v].name == "r"))
            .map(|(n, _)| n)
            .expect("r = 1 node");
        let chain = paths.guard_chain(r1);
        let guards: Vec<(NodeId, &Cond)> = chain
            .iter()
            .filter(|g| guard_is_stable(&p, p.main, g.node, r1))
            .filter_map(|g| match &proc.nodes[g.node].cmd {
                Cmd::Assume(c) => Some((g.node, c)),
                _ => None,
            })
            .collect();
        assert!(guards.len() >= 2, "{guards:?}");
        let reason = refute_conjunction(&p, &r, Cp::new(p.main, r1), &guards);
        assert!(
            reason.as_deref().is_some_and(|s| s.contains("conflict")),
            "{reason:?}"
        );
    }

    #[test]
    fn feasible_conjunction_is_not_refuted() {
        let p = parse(
            "int main(int n) {
                int r = 0;
                if (n > 0) {
                    if (n < 10) { r = 1; }
                }
                return r;
             }",
        )
        .unwrap();
        let r = analyze(&p, Engine::Sparse);
        let proc = &p.procs[p.main];
        let paths = ProcPaths::build(proc);
        let r1 = proc
            .nodes
            .iter_enumerated()
            .find(|(_, nd)| matches!(&nd.cmd, Cmd::Assign(LVal::Var(v), Expr::Const(1)) if p.vars[*v].name == "r"))
            .map(|(n, _)| n)
            .unwrap();
        let chain = paths.guard_chain(r1);
        let guards: Vec<(NodeId, &Cond)> = chain
            .iter()
            .filter_map(|g| match &proc.nodes[g.node].cmd {
                Cmd::Assume(c) => Some((g.node, c)),
                _ => None,
            })
            .collect();
        assert!(refute_conjunction(&p, &r, Cp::new(p.main, r1), &guards).is_none());
    }
}
