//! An independent post-fixpoint validation oracle.
//!
//! The paper gives three checkable contracts that together say a sparse
//! analysis result is trustworthy, and this module re-checks all three
//! *after* the fact, with code deliberately independent of the solvers:
//!
//! 1. **Post-fixpoint (§2.3).** A result `X̂` is sound iff
//!    `f̂_c(X̂) ⊑ X̂` at every program point: one extra transfer-function
//!    pass over the final values must produce nothing outside what is
//!    stored. [`check_sparse_post_fixpoint`] replays the sparse engine's
//!    gather/transfer step from scratch (its own `assemble`, not the
//!    solver's) and compares binding by binding. This also covers
//!    *degraded* (budget-exhausted) results, whose post-fixpoint claim is
//!    otherwise only an argument in a comment.
//! 2. **Lemma 1.** The sparse and dense fixpoints agree on defined
//!    entries — the sparse value of `l ∈ D̂(c)` and the dense value at the
//!    same point must describe the same concrete states. Widening-point
//!    placement differs between the engines (WTO heads vs dependency
//!    cycles), so the two *iteration sequences* may settle on different
//!    but comparable post-fixpoints; [`check_lemma1_interval`] therefore
//!    counts comparable disagreement as `drift` and flags only
//!    ⊑-incomparable bindings — those cannot both over-approximate one
//!    least fixpoint trajectory and indicate a transfer/propagation bug.
//! 3. **Def. 5.** The def/use over-approximation must satisfy
//!    `D̂(c) − D(c) ⊆ Û(c)`: every spurious definition is also a use, so
//!    relayed values are propagated, not invented. Tavares et al. show
//!    conventional def-use chains violate exactly this side condition;
//!    [`check_defuse_side_condition`] asserts it against the computed
//!    [`DefUse`] sets.
//!
//! The checks return structured [`Violation`]s; the batch driver turns a
//! non-empty list into the `invalid` per-unit outcome (never cached, fails
//! the bench gate).

use crate::budget::Budget;
use crate::defuse::DefUse;
use crate::depgen::DataDeps;
use crate::interval::{self, AnalyzeOptions, Engine, IntervalResult, IntervalSparseSpec};
use crate::preanalysis::PreAnalysis;
use crate::sparse::SparseSpec;
use sga_domains::lattice::Lattice;
use sga_domains::{AbsLoc, Value};
use sga_ir::{Cmd, Cp, Program};
use sga_utils::{FxHashMap, PMap};

/// Cap on recorded violations per check — a genuinely broken transfer
/// function would otherwise flood the report with thousands of bindings.
/// The count of *suppressed* violations is still reported.
const MAX_VIOLATIONS: usize = 64;

/// Which oracle check a violation came from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CheckKind {
    /// `f̂_c(X̂) ⊑ X̂` failed at some point (§2.3).
    PostFixpoint,
    /// Sparse and dense bindings are ⊑-incomparable on a defined entry
    /// (Lemma 1).
    Lemma1,
    /// `D̂(c) − D(c) ⊆ Û(c)` failed (Def. 5).
    DefUseSide,
    /// A cached result disagrees with a fresh recomputation (batch-driver
    /// check: the checksum was valid but the content is wrong).
    CacheMismatch,
}

impl CheckKind {
    /// Stable name used in rendered reports.
    pub fn name(self) -> &'static str {
        match self {
            CheckKind::PostFixpoint => "post_fixpoint",
            CheckKind::Lemma1 => "lemma1",
            CheckKind::DefUseSide => "defuse_side_condition",
            CheckKind::CacheMismatch => "cache_mismatch",
        }
    }
}

/// One concrete oracle failure.
#[derive(Clone, Debug)]
pub struct Violation {
    /// The failed check.
    pub kind: CheckKind,
    /// Human-readable location + evidence.
    pub detail: String,
}

impl Violation {
    fn new(kind: CheckKind, detail: String) -> Violation {
        Violation { kind, detail }
    }

    /// `check_name: detail`, the rendering reports use.
    pub fn render(&self) -> String {
        format!("{}: {}", self.kind.name(), self.detail)
    }
}

/// Outcome of one check: how much was looked at, and what failed.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// Program points examined.
    pub points: usize,
    /// Individual bindings (or set members) examined.
    pub bindings: usize,
    /// Recorded failures (capped at [`MAX_VIOLATIONS`]).
    pub violations: Vec<Violation>,
    /// Failures beyond the cap.
    pub suppressed: usize,
}

impl CheckReport {
    fn push(&mut self, v: Violation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        } else {
            self.suppressed += 1;
        }
    }
}

/// Outcome of the Lemma 1 cross-check.
#[derive(Clone, Debug, Default)]
pub struct Lemma1Report {
    /// Defined-entry bindings compared.
    pub bindings: usize,
    /// Bindings where sparse and dense agree exactly.
    pub equal: usize,
    /// Comparable-but-unequal bindings (different widening-point placement;
    /// informational, not a violation).
    pub drift: usize,
    /// Whether the check was skipped (degraded fixpoints stop at
    /// strategy-dependent post-fixpoints, so cross-engine comparison says
    /// nothing).
    pub skipped: bool,
    /// ⊑-incomparable bindings — genuine violations.
    pub violations: Vec<Violation>,
    /// Violations beyond the cap.
    pub suppressed: usize,
}

/// Everything the oracle found about one unit.
#[derive(Clone, Debug, Default)]
pub struct UnitValidation {
    /// Post-fixpoint check over the interval sparse result.
    pub interval: CheckReport,
    /// Post-fixpoint check over the octagon sparse result.
    pub octagon: CheckReport,
    /// Sparse-vs-dense cross-check (interval domain).
    pub lemma1: Lemma1Report,
    /// Def. 5 side-condition check.
    pub defuse: CheckReport,
    /// Driver-level violations (cache cross-check).
    pub extra: Vec<Violation>,
}

impl UnitValidation {
    /// All violations, in deterministic report order.
    pub fn violations(&self) -> impl Iterator<Item = &Violation> + '_ {
        self.interval
            .violations
            .iter()
            .chain(&self.octagon.violations)
            .chain(&self.lemma1.violations)
            .chain(&self.defuse.violations)
            .chain(&self.extra)
    }

    /// Violations dropped by the per-check caps.
    pub fn suppressed(&self) -> usize {
        self.interval.suppressed
            + self.octagon.suppressed
            + self.lemma1.suppressed
            + self.defuse.suppressed
    }

    /// Whether every check passed.
    pub fn is_valid(&self) -> bool {
        self.violations().next().is_none() && self.suppressed() == 0
    }

    /// Records a driver-level violation (e.g. cache cross-check failure).
    pub fn add_extra(&mut self, kind: CheckKind, detail: String) {
        self.extra.push(Violation::new(kind, detail));
    }
}

/// The non-external program points, in deterministic program order.
fn points(program: &Program) -> impl Iterator<Item = Cp> + '_ {
    program
        .all_points()
        .filter(|cp| !program.procs[cp.proc].is_external)
}

/// Re-checks `f̂_c(X̂) ⊑ X̂` at every program point of a finished sparse
/// result: re-assembles each point's input from its data dependencies
/// (independently of the solver's own bookkeeping), applies the transfer
/// function once, and requires every produced binding to be `⊑` the stored
/// one. Holds for exact *and* degraded fixpoints — degradation changes
/// where widening stops the ascent, not the post-fixpoint property.
pub fn check_sparse_post_fixpoint<S: SparseSpec>(
    program: &Program,
    deps: &DataDeps,
    spec: &S,
    values: &FxHashMap<Cp, PMap<S::L, S::V>>,
) -> CheckReport {
    let main_entry = Cp::new(program.main, program.procs[program.main].entry);
    let gather = |edges: &[(u32, Cp)], mut acc: PMap<S::L, S::V>| -> PMap<S::L, S::V> {
        for &(loc_id, from) in edges {
            let l = spec.loc_of(loc_id);
            if let Some(v) = values.get(&from).and_then(|m| m.get(&l)) {
                let joined = match acc.get(&l) {
                    Some(old) => old.join(v),
                    None => v.clone(),
                };
                acc = acc.insert(l, joined);
            }
        }
        acc
    };

    let mut report = CheckReport::default();
    for cp in points(program) {
        report.points += 1;
        let seed = if cp == main_entry {
            spec.initial()
        } else {
            PMap::new()
        };
        let pre = gather(deps.deps_into(cp), seed);
        let ret = gather(deps.deps_into_ret(cp), PMap::new());
        let out = spec.transfer(cp, &pre, &ret);
        let stored = values.get(&cp);
        for (l, v) in out.iter() {
            report.bindings += 1;
            let holds = match stored.and_then(|m| m.get(l)) {
                Some(s) => v.le(s),
                None => v.le(&S::V::bottom()),
            };
            if !holds {
                report.push(Violation::new(
                    CheckKind::PostFixpoint,
                    format!(
                        "{cp}: {l:?}: f\u{302}(X\u{302}) = {v:?} \u{22d4} stored {:?}",
                        stored.and_then(|m| m.get(l))
                    ),
                ));
            }
        }
    }
    report
}

/// Cross-checks sparse vs dense interval bindings on defined entries
/// (Lemma 1). Call points are skipped — the sparse engine parks parameter
/// and relay bindings there that the dense engine scopes differently.
/// Exact agreement is counted as `equal`, comparable disagreement (the
/// engines widen at different point sets, so one may settle slightly above
/// the other) as `drift`, and only ⊑-*incomparable* bindings — which no
/// widening-placement argument can explain — become violations.
pub fn check_lemma1_interval(
    program: &Program,
    sparse: &FxHashMap<Cp, PMap<AbsLoc, Value>>,
    dense: &IntervalResult,
) -> Lemma1Report {
    let mut report = Lemma1Report::default();
    for cp in points(program) {
        if matches!(program.cmd(cp), Cmd::Call { .. }) {
            continue;
        }
        let Some(bindings) = sparse.get(&cp) else {
            continue;
        };
        for (l, sv) in bindings.iter() {
            report.bindings += 1;
            let dv = dense.value_at(cp, l);
            if *sv == dv {
                report.equal += 1;
            } else if sv.le(&dv) || dv.le(sv) {
                report.drift += 1;
            } else if report.violations.len() < MAX_VIOLATIONS {
                report.violations.push(Violation::new(
                    CheckKind::Lemma1,
                    format!("{cp}: {l:?}: sparse {sv:?} incomparable with dense {dv:?}"),
                ));
            } else {
                report.suppressed += 1;
            }
        }
    }
    report
}

/// Asserts Def. 5's side condition `D̂(c) − D(c) ⊆ Û(c)` point by point:
/// every *spurious* definition (a relay, not a semantic def) must also be
/// a use, otherwise the sparse engine would invent a value at `c` instead
/// of relaying one through it.
pub fn check_defuse_side_condition(program: &Program, du: &DefUse) -> CheckReport {
    let mut report = CheckReport::default();
    for cp in points(program) {
        let Some(sets) = du.sets.get(&cp) else {
            continue;
        };
        report.points += 1;
        for l in &sets.defs {
            report.bindings += 1;
            if sets.real_defs.binary_search(l).is_err() && sets.uses.binary_search(l).is_err() {
                report.push(Violation::new(
                    CheckKind::DefUseSide,
                    format!(
                        "{cp}: {l:?} \u{2208} D\u{302}(c) \u{2212} D(c) but \u{2209} U\u{302}(c)"
                    ),
                ));
            }
        }
    }
    report
}

/// Runs the octagon sparse analysis under `options` and post-fixpoint-checks
/// its result (the octagon spec types are private to [`crate::octagon`], so
/// the solve-then-check glue lives there).
pub fn check_octagon_sparse(program: &Program, options: AnalyzeOptions) -> CheckReport {
    crate::octagon::sparse_post_fixpoint_check(program, options)
}

/// Borrowed artifacts of an already-solved interval sparse analysis, as the
/// batch driver holds them.
pub struct ValidationInputs<'a> {
    /// Pre-analysis (call targets, points-to) the result was built from.
    pub pre: &'a PreAnalysis,
    /// Def/use sets with the interned location table.
    pub du: &'a DefUse,
    /// The dependency edges the solver propagated along.
    pub deps: &'a DataDeps,
    /// The final sparse value map.
    pub sparse_values: &'a FxHashMap<Cp, PMap<AbsLoc, Value>>,
    /// Whether the solve degraded (skips the Lemma 1 cross-check).
    pub degraded: bool,
}

/// Runs all three oracle checks against one unit: the post-fixpoint check
/// over the given interval result *and* over a freshly solved octagon
/// result (both under `options.budget`, so degraded units are validated in
/// their degraded form), the Lemma 1 sparse-vs-dense cross-check (exact
/// fixpoints only — the dense reference runs unbounded), and the Def. 5
/// side condition.
pub fn validate_unit(
    program: &Program,
    inputs: &ValidationInputs<'_>,
    options: AnalyzeOptions,
) -> UnitValidation {
    let spec = IntervalSparseSpec {
        program,
        pre: inputs.pre,
        du: inputs.du,
    };
    let interval_report =
        check_sparse_post_fixpoint(program, inputs.deps, &spec, inputs.sparse_values);
    let octagon_report = check_octagon_sparse(program, options);
    let lemma1 = if inputs.degraded {
        Lemma1Report {
            skipped: true,
            ..Lemma1Report::default()
        }
    } else {
        // The dense reference must be an exact fixpoint: a budget that the
        // sparse solve survived could still degrade the (more iteration-
        // hungry) dense solve and ruin comparability.
        let dense = interval::analyze_with(
            program,
            Engine::Base,
            AnalyzeOptions {
                budget: Budget::unbounded(),
                ..options
            },
        );
        check_lemma1_interval(program, inputs.sparse_values, &dense)
    };
    let defuse = check_defuse_side_condition(program, inputs.du);
    UnitValidation {
        interval: interval_report,
        octagon: octagon_report,
        lemma1,
        defuse,
        extra: Vec::new(),
    }
}

/// Self-contained validation of one program: runs the interval sparse
/// analysis itself, then [`validate_unit`]. Entry point for callers without
/// a staged pipeline (tests, one-shot audits).
pub fn validate_program(program: &Program, options: AnalyzeOptions) -> UnitValidation {
    let ValidationParts {
        pre,
        du,
        deps,
        values,
        degraded,
    } = solve_for_validation(program, options);
    validate_unit(
        program,
        &ValidationInputs {
            pre: &pre,
            du: &du,
            deps: &deps,
            sparse_values: &values,
            degraded,
        },
        options,
    )
}

/// Owned artifacts of one interval sparse solve (see
/// [`solve_for_validation`]).
pub struct ValidationParts {
    /// Pre-analysis result.
    pub pre: PreAnalysis,
    /// Def/use sets.
    pub du: DefUse,
    /// Dependency edges.
    pub deps: DataDeps,
    /// Final sparse values.
    pub values: FxHashMap<Cp, PMap<AbsLoc, Value>>,
    /// Whether the solve degraded.
    pub degraded: bool,
}

/// Runs the interval sparse analysis and returns everything the oracle
/// needs, still warm.
pub fn solve_for_validation(program: &Program, options: AnalyzeOptions) -> ValidationParts {
    use crate::widening::WideningPlan;
    use crate::{defuse, depgen, icfg::Icfg, preanalysis, sparse};

    let pre = preanalysis::run(program);
    let icfg = Icfg::build(program, &pre);
    let du = defuse::compute(program, &pre);
    let deps = depgen::generate(program, &pre, &du, options.depgen);
    let spec = IntervalSparseSpec {
        program,
        pre: &pre,
        du: &du,
    };
    let plan = WideningPlan::for_program(program, options.widening);
    let solved = sparse::solve_backend(
        options.dep_backend,
        program,
        &icfg,
        &deps,
        &spec,
        &plan,
        &options.budget,
    );
    ValidationParts {
        values: solved.values,
        degraded: solved.degraded,
        pre,
        du,
        deps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sga_cfront::parse;

    const LOOPY: &str = r#"
        int g;
        int inc(int x) { return x + 1; }
        int main() {
            int i;
            int a[10];
            for (i = 0; i < 10; i = inc(i)) {
                a[i] = i;
                g = g + i;
            }
            return g;
        }
    "#;

    #[test]
    fn clean_program_validates() {
        let program = parse(LOOPY).unwrap();
        let v = validate_program(&program, AnalyzeOptions::default());
        assert!(
            v.is_valid(),
            "unexpected violations: {:?}",
            v.violations().map(Violation::render).collect::<Vec<_>>()
        );
        assert!(v.interval.points > 0 && v.interval.bindings > 0);
        assert!(v.octagon.points > 0);
        assert!(v.defuse.bindings > 0);
        assert!(!v.lemma1.skipped && v.lemma1.bindings > 0);
    }

    #[test]
    fn degraded_result_is_still_a_post_fixpoint() {
        let program = parse(LOOPY).unwrap();
        let options = AnalyzeOptions {
            budget: Budget::with_max_steps(5),
            ..AnalyzeOptions::default()
        };
        let parts = solve_for_validation(&program, options);
        assert!(parts.degraded, "budget of 5 steps must degrade this loop");
        let v = validate_program(&program, options);
        assert!(
            v.is_valid(),
            "degraded result must still pass: {:?}",
            v.violations().map(Violation::render).collect::<Vec<_>>()
        );
        assert!(v.lemma1.skipped, "lemma1 is skipped for degraded units");
    }

    #[test]
    fn broken_result_is_caught_by_the_post_fixpoint_check() {
        let program = parse(LOOPY).unwrap();
        let options = AnalyzeOptions::default();
        let mut parts = solve_for_validation(&program, options);

        // Sabotage: drop one point's stored bindings. The transfer pass
        // re-derives them from the (unchanged) inputs, so the oracle must
        // see bindings that are ⋢ the (now missing) stored state.
        let victim = {
            let mut cps: Vec<Cp> = parts
                .values
                .iter()
                .filter(|(_, m)| !m.is_empty())
                .map(|(cp, _)| *cp)
                .collect();
            cps.sort();
            *cps.last().expect("analysis bound at least one point")
        };
        parts.values.remove(&victim);

        let spec = IntervalSparseSpec {
            program: &program,
            pre: &parts.pre,
            du: &parts.du,
        };
        let report = check_sparse_post_fixpoint(&program, &parts.deps, &spec, &parts.values);
        assert!(
            !report.violations.is_empty(),
            "dropping {victim}'s bindings must violate f\u{302}(X\u{302}) \u{2291} X\u{302}"
        );
        assert_eq!(report.violations[0].kind, CheckKind::PostFixpoint);
    }

    #[test]
    fn generated_corpus_units_validate_cleanly() {
        // The same seeds the pipeline tests and the benchmark corpus use:
        // interprocedural generated code is where sparse/dense widening
        // placement differs most, so this is the oracle's real proving
        // ground for "drift is comparable, never incomparable".
        for seed in [11u64, 12, 0xFEED] {
            let source = sga_cgen::generate(&sga_cgen::GenConfig::sized(seed, 1));
            let program = parse(&source).unwrap();
            let v = validate_program(&program, AnalyzeOptions::default());
            assert!(
                v.is_valid(),
                "seed {seed}: {:?}",
                v.violations().map(Violation::render).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn defuse_side_condition_holds_on_parsed_programs() {
        let program = parse(LOOPY).unwrap();
        let pre = crate::preanalysis::run(&program);
        let du = crate::defuse::compute(&program, &pre);
        let report = check_defuse_side_condition(&program, &du);
        assert!(report.violations.is_empty());
        assert!(report.bindings > 0);
    }
}
