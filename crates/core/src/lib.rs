//! The sparse global analysis framework of Oh, Heo, Lee, Lee & Yi
//! (*Design and Implementation of Sparse Global Analyses for C-like
//! Languages*, PLDI 2012).
//!
//! The crate provides, mirroring the paper's structure:
//!
//! * [`semantics`] — the non-relational abstract semantics of §3.1
//!   (interval × points-to × array-block values) with the `Ê`/`Û` evaluation
//!   functions of §3.2;
//! * [`preanalysis`] — the flow-insensitive conservative pre-analysis that
//!   D̂/Û are derived from (§3.2);
//! * [`defuse`] — the safe approximations `D̂(c)`/`Û(c)` (Definition 5) plus
//!   the per-procedure access summaries of §5;
//! * [`icfg`] — the interprocedural CFG with call/return/bypass edges shared
//!   by the dense engines;
//! * [`dense`] — the baseline worklist engine: `vanilla` (global, whole
//!   states) and `base` (access-based localization \[38\]);
//! * [`depgen`] — data-dependency generation: per-procedure
//!   reaching-definitions over D̂/Û, interprocedural linking, and the bypass
//!   optimization of §5;
//! * [`sparse`] — the sparse engine: values propagate along data
//!   dependencies instead of control flow (§2.7);
//! * [`interval`] — the `Interval{vanilla,base,sparse}` analyzers of §6.1;
//! * [`octagon`] — the packed relational instance of §4 and the
//!   `Octagon{vanilla,base,sparse}` analyzers of §6.2;
//! * [`constprop`] — a third instance, sparse constant propagation (the
//!   original sparse analysis per the related-work lineage), built from the
//!   same D̂/Û sets, dependencies and engine — the framework's genericity
//!   demonstrated in code;
//! * [`checker`] — the Sparrow-style buffer-overrun + null-deref client;
//! * [`pathcond`] — dominator trees, dominating `assume` guard chains and
//!   the sound guard-conjunction evaluation behind path-sensitive triage;
//! * [`stats`] — the per-phase measurements the tables report.
//!
//! # Quickstart
//!
//! ```
//! use sga_core::interval::{analyze, Engine};
//!
//! let program = sga_cfront::parse(
//!     "int main() { int x = 0; while (x < 10) x = x + 1; return x; }",
//! ).expect("parses");
//! let result = analyze(&program, Engine::Sparse);
//! // The return variable of main is bounded by the loop exit condition.
//! let main = program.main;
//! let ret = program.procs[main].ret_var;
//! let exit = program.procs[main].exit;
//! let v = result.value_at(sga_ir::Cp::new(main, exit), &sga_domains::AbsLoc::Var(ret));
//! assert_eq!(v.itv, sga_domains::Interval::constant(10));
//! ```

pub mod budget;
pub mod checker;
pub mod constprop;
pub mod defuse;
pub mod dense;
pub mod depgen;
pub mod depstore;
pub mod icfg;
pub mod interface;
pub mod interval;
pub mod octagon;
pub mod pathcond;
pub mod preanalysis;
pub mod semantics;
pub mod sparse;
pub mod stats;
pub mod triage;
pub mod validate;
pub mod widening;

#[cfg(test)]
mod examples_paper;
