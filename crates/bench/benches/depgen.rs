//! Criterion micro-benchmarks of the sparse pipeline's phases: the
//! flow-insensitive pre-analysis, def/use derivation, and dependency
//! generation with/without the bypass optimization — the `Dep` column of
//! Table 2 decomposed.

use criterion::{criterion_group, criterion_main, Criterion};
use sga::analysis::depgen::{self, DepGenOptions};
use sga::analysis::{defuse, preanalysis};
use sga::cgen::GenConfig;

fn bench_phases(c: &mut Criterion) {
    let mut cfg = GenConfig::sized(0xDE9, 1);
    cfg.target_loc = 1000;
    let src = sga::cgen::generate(&cfg);
    let program = sga::frontend::parse(&src).expect("parses");

    let mut group = c.benchmark_group("dep_phase");
    group.sample_size(20);
    group.bench_function("preanalysis", |b| b.iter(|| preanalysis::run(&program)));

    let pre = preanalysis::run(&program);
    group.bench_function("defuse", |b| b.iter(|| defuse::compute(&program, &pre)));

    let du = defuse::compute(&program, &pre);
    group.bench_function("depgen_bypass_on", |b| {
        b.iter(|| depgen::generate(&program, &pre, &du, DepGenOptions { bypass: true }))
    });
    group.bench_function("depgen_bypass_off", |b| {
        b.iter(|| depgen::generate(&program, &pre, &du, DepGenOptions { bypass: false }))
    });
    group.finish();
}

criterion_group!(benches, bench_phases);
criterion_main!(benches);
