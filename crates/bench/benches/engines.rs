//! Criterion micro-benchmarks of the three interval engines — the
//! continuous-integration-sized companion to Table 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sga::analysis::interval::{analyze, Engine};
use sga::cgen::GenConfig;
use sga::ir::Program;

fn programs() -> Vec<(String, Program)> {
    [(500usize, 1u64), (1500, 2)]
        .into_iter()
        .map(|(loc, seed)| {
            let mut cfg = GenConfig::sized(seed, 1);
            cfg.target_loc = loc;
            cfg.functions = (loc / 25).max(4);
            let src = sga::cgen::generate(&cfg);
            let program = sga::frontend::parse(&src).expect("parses");
            (format!("{loc}loc"), program)
        })
        .collect()
}

fn bench_engines(c: &mut Criterion) {
    let programs = programs();
    let mut group = c.benchmark_group("interval_engines");
    group.sample_size(10);
    for (name, program) in &programs {
        for engine in [Engine::Vanilla, Engine::Base, Engine::Sparse] {
            // Vanilla on the larger program is too slow for a micro-bench.
            if engine == Engine::Vanilla && name != "500loc" {
                continue;
            }
            group.bench_with_input(
                BenchmarkId::new(format!("{engine:?}"), name),
                program,
                |b, p| b.iter(|| analyze(p, engine)),
            );
        }
    }
    group.finish();
}

fn bench_octagon(c: &mut Criterion) {
    let mut cfg = GenConfig::sized(3, 1);
    cfg.target_loc = 400;
    cfg.functions = 16;
    let src = sga::cgen::generate(&cfg);
    let program = sga::frontend::parse(&src).expect("parses");
    let mut group = c.benchmark_group("octagon_engines");
    group.sample_size(10);
    for engine in [Engine::Base, Engine::Sparse] {
        group.bench_function(format!("{engine:?}"), |b| {
            b.iter(|| sga::analysis::octagon::analyze(&program, engine))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_engines, bench_octagon);
criterion_main!(benches);
