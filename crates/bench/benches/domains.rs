//! Criterion micro-benchmarks of the abstract domains: interval arithmetic,
//! octagon closure, points-to unions, and the persistent state map.

use criterion::{criterion_group, criterion_main, Criterion};
use sga::domains::{AbsLoc, Interval, Lattice, LocSet, Octagon, State, Value};
use sga::ir::VarId;
use sga::utils::Idx;

fn bench_interval(c: &mut Criterion) {
    let a = Interval::range(-50, 120);
    let b = Interval::range(3, 17);
    c.bench_function("interval/mul", |bch| {
        bch.iter(|| std::hint::black_box(a).mul(&b))
    });
    c.bench_function("interval/widen_join", |bch| {
        bch.iter(|| {
            let w = std::hint::black_box(a).widen(&b);
            w.join(&a)
        })
    });
}

fn bench_octagon(c: &mut Criterion) {
    // A 10-variable octagon (the pack-size cap) with a mix of constraints.
    let mut oct = Octagon::top(10);
    for i in 0..10 {
        oct = oct.assign_interval(i, &Interval::range(i as i64, 10 + i as i64));
    }
    for i in 0..9 {
        oct = oct.add_diff(i + 1, i, 1);
    }
    let unclosed = oct.widen(&oct.assign_var_plus(0, 1, 2));
    c.bench_function("octagon/strong_closure_10vars", |bch| {
        bch.iter(|| std::hint::black_box(&unclosed).close())
    });
    c.bench_function("octagon/join_10vars", |bch| {
        let other = oct.assign_var_plus(3, 4, -2);
        bch.iter(|| std::hint::black_box(&oct).join(&other))
    });
    c.bench_function("octagon/project", |bch| {
        bch.iter(|| std::hint::black_box(&oct).project(5))
    });
}

fn bench_state(c: &mut Criterion) {
    let locs: Vec<AbsLoc> = (0..1000).map(|i| AbsLoc::Var(VarId::new(i))).collect();
    let big: State = locs.iter().map(|&l| (l, Value::constant(7))).collect();
    c.bench_function("state/insert_into_1000", |bch| {
        bch.iter(|| {
            std::hint::black_box(&big).set(AbsLoc::Var(VarId::new(500)), Value::constant(9))
        })
    });
    let shifted: State = big.set(AbsLoc::Var(VarId::new(1)), Value::constant(8));
    c.bench_function("state/join_mostly_shared_1000", |bch| {
        bch.iter(|| std::hint::black_box(&big).join(&shifted))
    });
    let halves: State = locs
        .iter()
        .step_by(2)
        .map(|&l| (l, Value::constant(3)))
        .collect();
    c.bench_function("state/join_disjoint_halves", |bch| {
        bch.iter(|| std::hint::black_box(&big).join(&halves))
    });
}

fn bench_locset(c: &mut Criterion) {
    let a: LocSet = (0..200)
        .step_by(2)
        .map(|i| AbsLoc::Var(VarId::new(i)))
        .collect();
    let b: LocSet = (0..200)
        .step_by(3)
        .map(|i| AbsLoc::Var(VarId::new(i)))
        .collect();
    c.bench_function("locset/union_200", |bch| {
        bch.iter(|| std::hint::black_box(&a).union(&b))
    });
    c.bench_function("locset/subset_query", |bch| {
        bch.iter(|| std::hint::black_box(&b).is_subset(&a))
    });
}

criterion_group!(
    benches,
    bench_interval,
    bench_octagon,
    bench_state,
    bench_locset
);
criterion_main!(benches);
