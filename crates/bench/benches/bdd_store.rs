//! Criterion micro-benchmarks of the dependency-relation stores (§5's
//! BDD-vs-set comparison, throughput side).

use criterion::{criterion_group, criterion_main, Criterion};
use sga::bdd::relation::DepTriple;
use sga::bdd::{BddDepStore, DepStore, SetDepStore};

/// A redundant relation shaped like real dependency data: many sources per
/// (target, location).
fn triples() -> Vec<DepTriple> {
    let mut out = Vec::new();
    for to in 0..64u32 {
        for loc in 0..8u32 {
            for k in 0..8u32 {
                out.push(DepTriple {
                    from: (to * 7 + k * 13) % 512,
                    to,
                    loc,
                });
            }
        }
    }
    out
}

fn bench_insert(c: &mut Criterion) {
    let ts = triples();
    c.bench_function("depstore/set_insert_4k", |b| {
        b.iter(|| {
            let mut s = SetDepStore::new();
            for &t in &ts {
                s.insert(t);
            }
            s.len()
        })
    });
    c.bench_function("depstore/bdd_insert_4k", |b| {
        b.iter(|| {
            let mut s = BddDepStore::new(512, 8);
            for &t in &ts {
                s.insert(t);
            }
            s.len()
        })
    });
}

fn bench_query(c: &mut Criterion) {
    let ts = triples();
    let mut set = SetDepStore::new();
    let mut bdd = BddDepStore::new(512, 8);
    for &t in &ts {
        set.insert(t);
        bdd.insert(t);
    }
    c.bench_function("depstore/set_contains", |b| {
        b.iter(|| ts.iter().filter(|&&t| set.contains(t)).count())
    });
    c.bench_function("depstore/bdd_contains", |b| {
        b.iter(|| ts.iter().filter(|&&t| bdd.contains(t)).count())
    });
}

criterion_group!(benches, bench_insert, bench_query);
criterion_main!(benches);
