//! **Ablation D** — the semi-sparse instance (§3.2).
//!
//! The paper shows Hardekopf & Lin's *semi-sparse* analysis (POPL 2009) is
//! a restricted instance of the framework: a coarser pre-analysis that
//! gives non-top-level (address-taken) variables ⊤ points-to information,
//! so only top-level variables are treated sparsely. This ablation runs
//! both regimes on chains of memory-resident pointers and compares
//! dependency volume and fixpoint cost — the price of the coarser
//! instance; the coarse results must cover the precise ones (both are safe
//! approximations).
//!
//! ```sh
//! cargo run --release -p sga-bench --bin ablation_semisparse
//! ```

use sga::analysis::interval::{analyze_with, AnalyzeOptions, Engine};
use sga::domains::Lattice;
use std::fmt::Write as _;

/// A family where the two regimes genuinely differ: pointers stored *in
/// memory* (each `p_i` is address-taken through `q_i`). Semi-sparse treats
/// only top-level variables sparsely — the value of an address-taken
/// pointer is ⊤-targets, so every `**q_i` store may touch every
/// address-taken location; the framework's precise pre-analysis keeps each
/// chain singleton (`**q_i ↦ {a_i}`).
fn pointer_family(n: usize) -> String {
    let mut src = String::new();
    for i in 0..n {
        let _ = writeln!(src, "int a{i} = {i}; int *p{i}; int **q{i};");
    }
    let _ = writeln!(src, "int main() {{");
    for i in 0..n {
        let _ = writeln!(src, "  p{i} = &a{i};");
        let _ = writeln!(src, "  q{i} = &p{i};");
    }
    let _ = writeln!(src, "  int round = 0;");
    let _ = writeln!(src, "  while (round < 10) {{");
    for i in 0..n {
        let _ = writeln!(src, "    **q{i} = **q{i} + 1;");
    }
    let _ = writeln!(src, "    round = round + 1;");
    let _ = writeln!(src, "  }}");
    let _ = writeln!(src, "  int sum = 0;");
    for i in 0..n {
        let _ = writeln!(src, "  sum = sum + a{i};");
    }
    let _ = writeln!(src, "  return sum;");
    let _ = writeln!(src, "}}");
    src
}

fn main() {
    println!(
        "{:>8} | {:>10} {:>10} {:>9} | {:>10} {:>10} {:>9} | {:>7}",
        "pointers", "edges_pre", "evals_pre", "fix_pre", "edges_ss", "evals_ss", "fix_ss", "sound?"
    );
    for n in [10usize, 30, 60, 100] {
        let src = pointer_family(n);
        let program = sga::frontend::parse(&src).expect("family parses");

        let precise = analyze_with(
            &program,
            Engine::Sparse,
            AnalyzeOptions {
                semi_sparse: false,
                ..Default::default()
            },
        );
        let semi = analyze_with(
            &program,
            Engine::Sparse,
            AnalyzeOptions {
                semi_sparse: true,
                ..Default::default()
            },
        );

        // Both are safe approximations: the coarse run must cover the
        // precise one (it may be less precise, never incomparable-below).
        let mut sound = true;
        for (cp, st) in &precise.values {
            if matches!(program.cmd(*cp), sga::ir::Cmd::Call { .. }) {
                continue;
            }
            for (l, v) in st.iter() {
                if !v.is_bottom() && !v.le(&semi.value_at(*cp, l)) {
                    sound = false;
                }
            }
        }
        println!(
            "{:>8} | {:>10} {:>10} {:>8.0}ms | {:>10} {:>10} {:>8.0}ms | {:>7}",
            n,
            precise.stats.dep_edges,
            precise.stats.iterations,
            precise.stats.fix_time.as_secs_f64() * 1000.0,
            semi.stats.dep_edges,
            semi.stats.iterations,
            semi.stats.fix_time.as_secs_f64() * 1000.0,
            if sound { "yes" } else { "NO" },
        );
    }
    println!(
        "\nSemi-sparse (the Hardekopf-&-Lin instance, §3.2): conflating\n\
         address-taken variables multiplies dependency edges and fixpoint\n\
         work; the framework's precise pre-analysis keeps stores singleton."
    );
}
