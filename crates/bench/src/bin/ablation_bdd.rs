//! **Ablation A** — BDD vs set-based dependency stores (§5).
//!
//! The paper: for vim60, the set-based store needed > 24 GB where BDDs
//! needed 1 GB, because the dependency relation is highly redundant. This
//! ablation grows a program family, stores each one's dependency relation
//! both ways, and reports estimated bytes plus the BDD's structural sharing
//! (diagram nodes vs stored triples).
//!
//! ```sh
//! cargo run --release -p sga-bench --bin ablation_bdd
//! ```

use sga::analysis::interval::{AnalyzeOptions, Pipeline};
use sga::bdd::{BddDepStore, DepStore, SetDepStore};
use sga::cgen::GenConfig;

fn main() {
    println!(
        "{:>6} {:>9} {:>9} {:>12} {:>12} {:>9} {:>9}",
        "KLOC", "points", "triples", "set_KB", "bdd_KB", "bddNodes", "share"
    );
    for kloc in [1usize, 2, 4, 8] {
        let cfg = GenConfig::sized(0xB_DD + kloc as u64, kloc);
        let src = sga::cgen::generate(&cfg);
        let program = sga::frontend::parse(&src).expect("generated source parses");
        let pl = Pipeline::prepare(&program, AnalyzeOptions::default());
        let numbering = program.point_numbering();

        let mut set = SetDepStore::new();
        let mut bdd = BddDepStore::new(numbering.len() as u32, pl.du.locs.len() as u32);
        for (from, loc, to) in pl.deps.iter() {
            let t = sga::bdd::relation::DepTriple {
                from: numbering.index(from) as u32,
                to: numbering.index(to) as u32,
                loc,
            };
            set.insert(t);
            bdd.insert(t);
        }
        assert_eq!(set.len(), bdd.len(), "stores must agree");
        let share = set.len() as f64 / bdd.diagram_size().max(1) as f64;
        println!(
            "{:>6} {:>9} {:>9} {:>12.1} {:>12.1} {:>9} {:>8.1}x",
            kloc,
            numbering.len(),
            set.len(),
            set.approx_bytes() as f64 / 1024.0,
            bdd.approx_bytes() as f64 / 1024.0,
            bdd.diagram_size(),
            share,
        );
    }
    println!("\nshare = triples per BDD node: the redundancy BDDs exploit (§5).");

    // The paper's regime: vim60's relation spans 2.8M statements with heavy
    // many-def/many-use hubs (201K locations). Reproduce the *pattern* —
    // dense def×use bipartite blocks per location — where structural
    // sharing dominates.
    println!("\nhub-pattern relations (paper's high-redundancy regime):");
    println!(
        "{:>8} {:>9} {:>12} {:>12} {:>9} {:>9}",
        "defs×uses", "triples", "set_KB", "bdd_KB", "bddNodes", "share"
    );
    for (defs, uses) in [(32u32, 32u32), (64, 64), (128, 128), (256, 256)] {
        let mut set = SetDepStore::new();
        let mut bdd = BddDepStore::new(65536, 256);
        for loc in 0..64u32 {
            let base_from = loc * 97 % 4096;
            let base_to = 4096 + loc * 131 % 4096;
            for d in 0..defs {
                for u in 0..uses {
                    let t = sga::bdd::relation::DepTriple {
                        from: base_from + d,
                        to: base_to + u,
                        loc,
                    };
                    set.insert(t);
                    bdd.insert(t);
                }
            }
        }
        let share = set.len() as f64 / bdd.diagram_size().max(1) as f64;
        println!(
            "{:>8} {:>9} {:>12.1} {:>12.1} {:>9} {:>8.1}x",
            format!("{defs}x{uses}"),
            set.len(),
            set.approx_bytes() as f64 / 1024.0,
            bdd.approx_bytes() as f64 / 1024.0,
            bdd.diagram_size(),
            share,
        );
    }
    println!("set grows with the triple count; the BDD grows with the *structure*.");
}
