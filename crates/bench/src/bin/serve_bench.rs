//! Benchmarks the incremental daemon: cold-start time over a fixed-seed
//! generated corpus, then sixteen single-function probe edits measuring
//! per-edit latency and how far each edit's invalidation spreads. The same
//! edit sequence is replayed at `jobs=1` and `jobs=4`, and each engine's
//! accumulated report is compared byte-for-byte against a fresh cold batch
//! run of the corpus' final state — the daemon's convergence invariant.
//! Writes `BENCH_serve.json` into the working directory.
//!
//! With `--check` it instead *gates* (exit 1 on failure): no unit may
//! crash, both convergence comparisons must hold, the two engines'
//! reports must be identical to each other, and a single-function probe
//! edit must invalidate a strict subset of the corpus (sparse
//! invalidation actually sparing work). Timings are reported but never
//! gated.

use sga::pipeline::PipelineOptions;
use sga::serve::{cold_report, Engine};
use sga::utils::Json;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

const UNITS: usize = 8;
const KLOC: usize = 2;
const SEED: u64 = 65261;
const PROBE_ROUNDS: usize = 16;

/// Generates the bench corpus into `dir` (fresh, deterministic).
fn write_corpus(dir: &Path) -> Vec<(String, String)> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create corpus dir");
    (0..UNITS)
        .map(|i| {
            let name = format!("unit{i:03}.c");
            let source = sga::cgen::generate(&sga::cgen::GenConfig::sized(SEED + i as u64, KLOC));
            std::fs::write(dir.join(&name), &source).expect("write corpus unit");
            (name, source)
        })
        .collect()
}

struct Run {
    cold_start_ms: f64,
    edit_ms: Vec<f64>,
    invalidated: Vec<usize>,
    crashed: u64,
    converged: bool,
    report_text: String,
}

/// Cold-starts an engine over a fresh corpus copy, applies the probe edit
/// sequence, and checks convergence against a cold batch run of the final
/// state.
fn run_at(jobs: usize) -> Run {
    let dir = std::env::temp_dir().join(format!("sga-serve-bench-{}-j{jobs}", std::process::id()));
    let units = write_corpus(&dir);
    let opts = PipelineOptions {
        jobs,
        canonical: true,
        ..PipelineOptions::default()
    };

    let start = Instant::now();
    let mut engine = Engine::new(&dir, &opts).expect("engine cold start");
    let cold_start_ms = start.elapsed().as_secs_f64() * 1e3;

    // Probe edits: append one fresh, never-imported function per round to
    // the first unit. Its interface gains an export nothing depends on, so
    // a sparse invalidation should stop at the edited unit.
    let (target, mut source) = units[0].clone();
    let mut edit_ms = Vec::with_capacity(PROBE_ROUNDS);
    let mut invalidated = Vec::with_capacity(PROBE_ROUNDS);
    for round in 1..=PROBE_ROUNDS {
        source.push_str(&format!(
            "\nint sga_probe_{round}(int a) {{ return a + {round}; }}\n"
        ));
        let start = Instant::now();
        let outcome = engine
            .apply_edits(vec![(target.clone(), source.clone())])
            .expect("probe edit");
        edit_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(!outcome.is_noop(), "probe edit must change the unit");
        invalidated.push(outcome.invalidated.len());
    }

    let report = engine.report().expect("daemon report");
    let cold = cold_report(&dir, &opts).expect("cold batch run");
    let report_text = report.to_pretty();
    let converged = report_text == cold.to_pretty();
    let crashed = report
        .get("totals")
        .and_then(|t| t.get("crashed"))
        .and_then(Json::as_u64)
        .expect("crashed total");
    let _ = std::fs::remove_dir_all(&dir);
    Run {
        cold_start_ms,
        edit_ms,
        invalidated,
        crashed,
        converged,
        report_text,
    }
}

/// p-th percentile (nearest-rank) of an unsorted sample, in place.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0 * samples.len() as f64).ceil() as usize).max(1);
    samples[rank - 1]
}

fn main() -> ExitCode {
    let mut gate = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => gate = true,
            other => {
                eprintln!("serve_bench: unexpected argument `{other}`");
                eprintln!("usage: serve_bench [--check]");
                return ExitCode::from(2);
            }
        }
    }

    println!(
        "serve_bench: {UNITS} units x ~{KLOC} kloc, fixed seed {SEED}, \
         {PROBE_ROUNDS} probe edits, cache off"
    );
    let seq = run_at(1);
    let par = run_at(4);

    let identical = seq.report_text == par.report_text;
    let mut edit_ms = seq.edit_ms.clone();
    let (p50, p95) = (
        percentile(&mut edit_ms, 50.0),
        percentile(&mut edit_ms, 95.0),
    );
    let inv_min = *seq.invalidated.iter().min().expect("rounds");
    let inv_max = *seq.invalidated.iter().max().expect("rounds");
    println!(
        "cold start: {:.1}ms (jobs=1), {:.1}ms (jobs=4)",
        seq.cold_start_ms, par.cold_start_ms
    );
    println!("single-edit latency (jobs=1): p50 {p50:.1}ms, p95 {p95:.1}ms");
    println!("invalidated per probe edit: min {inv_min}, max {inv_max} (of {UNITS} units)");
    println!(
        "convergence vs cold run: jobs=1 {}, jobs=4 {}; reports identical across jobs: {}",
        seq.converged, par.converged, identical
    );

    if gate {
        let mut failed = false;
        if seq.crashed > 0 || par.crashed > 0 {
            eprintln!(
                "FAIL: {} unit(s) crashed (jobs=1), {} (jobs=4)",
                seq.crashed, par.crashed
            );
            failed = true;
        } else {
            println!("crashed units: 0 ok");
        }
        if !seq.converged || !par.converged {
            eprintln!("FAIL: daemon report diverged from the cold batch run");
            failed = true;
        } else {
            println!("convergence: daemon == cold batch run ok");
        }
        if !identical {
            eprintln!("FAIL: jobs=1 and jobs=4 reports differ");
            failed = true;
        } else {
            println!("determinism: jobs=1 == jobs=4 ok");
        }
        // The sparse-invalidation gate: a probe edit exports a symbol
        // nothing imports, so re-analysis must spare at least one unit.
        if inv_max >= UNITS {
            eprintln!("FAIL: a probe edit invalidated the whole corpus ({inv_max}/{UNITS})");
            failed = true;
        } else {
            println!("sparse invalidation: max {inv_max}/{UNITS} units ok");
        }
        return if failed {
            ExitCode::from(1)
        } else {
            println!("serve gate passed");
            ExitCode::SUCCESS
        };
    }

    let report = Json::obj()
        .with("bench", "serve")
        .with(
            "corpus",
            Json::obj()
                .with("units", UNITS)
                .with("kloc", KLOC)
                .with("seed", SEED as usize),
        )
        .with("probe_rounds", PROBE_ROUNDS)
        .with("cold_start_jobs1_ms", seq.cold_start_ms)
        .with("cold_start_jobs4_ms", par.cold_start_ms)
        .with("edit_p50_ms", p50)
        .with("edit_p95_ms", p95)
        .with("invalidated_min", inv_min)
        .with("invalidated_max", inv_max)
        .with("crashed", seq.crashed as usize)
        .with("converged_jobs1", seq.converged)
        .with("converged_jobs4", par.converged)
        .with("reports_identical", identical);
    let path = PathBuf::from("BENCH_serve.json");
    std::fs::write(&path, report.to_pretty() + "\n").expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
    ExitCode::SUCCESS
}
