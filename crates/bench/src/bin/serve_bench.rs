//! Benchmarks the incremental daemon, two scenarios:
//!
//! **Probe** — cold-start time over a fixed-seed generated corpus, then
//! sixteen single-function probe edits measuring per-edit latency and how
//! far each edit's invalidation spreads. The same edit sequence is
//! replayed at `jobs=1` and `jobs=4`, and each engine's accumulated
//! report is compared byte-for-byte against a fresh cold batch run of the
//! corpus' final state — the daemon's convergence invariant.
//!
//! **Flood** — a live socket daemon under deliberately hostile traffic:
//! a tiny request queue (`queue_cap=2`) plus round-stall faults force
//! load shedding while four client threads flood edits through the
//! retrying client; a subscriber that reads its ack and then never reads
//! again (with a shrunken kernel send buffer and a short write deadline)
//! forces a slow-subscriber eviction. Records shed count, evictions, p95
//! round latency, and — the invariant again — whether the flooded
//! daemon's report still matches a cold batch run.
//!
//! Writes `BENCH_serve.json` into the working directory.
//!
//! With `--check` it instead *gates* (exit 1 on failure): no unit may
//! crash, every convergence comparison must hold (probe at both job
//! counts, and the flooded daemon), the two probe engines' reports must
//! be identical to each other, a single-function probe edit must
//! invalidate a strict subset of the corpus (sparse invalidation actually
//! sparing work), and the flood must have shed at least one edit and
//! evicted the stalled subscriber. Timings are reported but never gated.

use sga::pipeline::{FaultPlan, PipelineOptions};
use sga::serve::{client, cold_report, serve, Engine, ServerConfig};
use sga::utils::Json;
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const UNITS: usize = 8;
const KLOC: usize = 2;
const SEED: u64 = 65261;
const PROBE_ROUNDS: usize = 16;

/// Flood scenario shape: enough concurrent edits to overwhelm a 2-slot
/// queue during the injected stalls, few enough to finish fast on one CPU.
const FLOOD_THREADS: usize = 4;
const FLOOD_EDITS_PER_THREAD: usize = 12;
/// Eviction phase bound: events needed to fill the stalled subscriber's
/// shrunken send buffer plus slack.
const EVICT_ROUNDS_MAX: usize = 200;

/// Generates the bench corpus into `dir` (fresh, deterministic).
fn write_corpus(dir: &Path) -> Vec<(String, String)> {
    let _ = std::fs::remove_dir_all(dir);
    std::fs::create_dir_all(dir).expect("create corpus dir");
    (0..UNITS)
        .map(|i| {
            let name = format!("unit{i:03}.c");
            let source = sga::cgen::generate(&sga::cgen::GenConfig::sized(SEED + i as u64, KLOC));
            std::fs::write(dir.join(&name), &source).expect("write corpus unit");
            (name, source)
        })
        .collect()
}

struct Run {
    cold_start_ms: f64,
    edit_ms: Vec<f64>,
    invalidated: Vec<usize>,
    crashed: u64,
    converged: bool,
    report_text: String,
}

/// Cold-starts an engine over a fresh corpus copy, applies the probe edit
/// sequence, and checks convergence against a cold batch run of the final
/// state.
fn run_at(jobs: usize) -> Run {
    let dir = std::env::temp_dir().join(format!("sga-serve-bench-{}-j{jobs}", std::process::id()));
    let units = write_corpus(&dir);
    let opts = PipelineOptions {
        jobs,
        canonical: true,
        ..PipelineOptions::default()
    };

    let start = Instant::now();
    let mut engine = Engine::new(&dir, &opts).expect("engine cold start");
    let cold_start_ms = start.elapsed().as_secs_f64() * 1e3;

    // Probe edits: append one fresh, never-imported function per round to
    // the first unit. Its interface gains an export nothing depends on, so
    // a sparse invalidation should stop at the edited unit.
    let (target, mut source) = units[0].clone();
    let mut edit_ms = Vec::with_capacity(PROBE_ROUNDS);
    let mut invalidated = Vec::with_capacity(PROBE_ROUNDS);
    for round in 1..=PROBE_ROUNDS {
        source.push_str(&format!(
            "\nint sga_probe_{round}(int a) {{ return a + {round}; }}\n"
        ));
        let start = Instant::now();
        let outcome = engine
            .apply_edits(vec![(target.clone(), source.clone())])
            .expect("probe edit");
        edit_ms.push(start.elapsed().as_secs_f64() * 1e3);
        assert!(!outcome.is_noop(), "probe edit must change the unit");
        invalidated.push(outcome.invalidated.len());
    }

    let report = engine.report().expect("daemon report");
    let cold = cold_report(&dir, &opts).expect("cold batch run");
    let report_text = report.to_pretty();
    let converged = report_text == cold.to_pretty();
    let crashed = report
        .get("totals")
        .and_then(|t| t.get("crashed"))
        .and_then(Json::as_u64)
        .expect("crashed total");
    let _ = std::fs::remove_dir_all(&dir);
    Run {
        cold_start_ms,
        edit_ms,
        invalidated,
        crashed,
        converged,
        report_text,
    }
}

/// p-th percentile (nearest-rank) of an unsorted sample, in place.
fn percentile(samples: &mut [f64], p: f64) -> f64 {
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let rank = ((p / 100.0 * samples.len() as f64).ceil() as usize).max(1);
    samples[rank - 1]
}

struct Flood {
    edits: usize,
    shed: usize,
    evicted_slow: usize,
    rounds: usize,
    round_p50_ms: u64,
    round_p95_ms: u64,
    crashed: u64,
    converged: bool,
}

/// The hostile-traffic scenario over a real TCP socket. Shedding is made
/// deterministic by a 2-slot request queue plus injected round stalls
/// (during a 300ms stall, four flooding threads can only land two edits;
/// the rest get `{"shed":true}` and retry). Eviction is made
/// deterministic by a subscriber that never reads past its ack, a ~4KB
/// kernel send buffer, an 8-event outbound queue, and a 250ms write
/// deadline: a few dozen diff events wedge its writer, the deadline
/// trips, and the daemon evicts it while rounds keep completing.
fn run_flood() -> Flood {
    let dir = std::env::temp_dir().join(format!("sga-serve-bench-flood-{}", std::process::id()));
    write_corpus(&dir);
    let opts = PipelineOptions {
        jobs: 1,
        canonical: true,
        ..PipelineOptions::default()
    };
    let engine = Engine::new(&dir, &opts).expect("flood engine cold start");
    let sock =
        std::env::temp_dir().join(format!("sga-serve-bench-flood-{}.sock", std::process::id()));
    let config = ServerConfig {
        tcp: Some("127.0.0.1:0".into()),
        unix: Some(sock.clone()),
        queue_cap: 2,
        sub_queue_cap: 8,
        write_deadline_ms: 250,
        sub_sndbuf: Some(4096),
        faults: FaultPlan::parse("stall@2=300,stall@4=300").expect("fault spec"),
        ..ServerConfig::default()
    };
    let handle = serve(engine, &config).expect("serve");
    let addr = handle.tcp_addr.expect("tcp addr").to_string();
    let stats = handle.stats();

    // The stalled subscriber: subscribe, read the ack, then never read
    // again, keeping the stream alive so the peer looks healthy while its
    // buffers silently fill. It connects over the *Unix* socket because
    // AF_UNIX charges every in-flight byte to the sender's (shrunken)
    // SO_SNDBUF — over TCP the peer's ~128KB receive buffer would absorb
    // hundreds of events before the daemon's writer ever blocked.
    let stalled = UnixStream::connect(&sock).expect("stalled subscriber connect");
    {
        let mut w = stalled.try_clone().expect("clone");
        w.write_all(b"{\"cmd\":\"subscribe\"}\n")
            .expect("subscribe");
        let mut ack = String::new();
        BufReader::new(&stalled).read_line(&mut ack).expect("ack");
        assert!(ack.contains("subscribed"), "bad subscribe ack: {ack}");
    }

    // Flood phase: concurrent edit streams through the retrying client.
    // Every thread writes its own unit, so content never collides and
    // every successful edit is a real round (no no-op dedup).
    let timeout = Some(Duration::from_secs(30));
    let threads: Vec<_> = (0..FLOOD_THREADS)
        .map(|t| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let unit = format!("flood{t}.c");
                let mut source = format!("int main() {{ return {t}; }}\n");
                for i in 0..FLOOD_EDITS_PER_THREAD {
                    source.push_str(&format!(
                        "int sga_flood_{t}_{i}(int a) {{ return a + {i}; }}\n"
                    ));
                    let (reply, _sheds) =
                        client::edit_with_retry(&addr, &unit, &source, timeout, 10)
                            .expect("flood edit");
                    assert!(
                        !client::is_shed(&reply),
                        "edit still shed after retries: {reply}"
                    );
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("flood thread");
    }

    // Eviction phase: sequential rounds until the stalled subscriber's
    // writer misses its deadline (each completed round broadcasts one
    // event into its clogged pipe).
    let mut evict_rounds = 0usize;
    let mut probe_source = String::from("int main() { return 9; }\n");
    while stats.evicted_slow() == 0 && evict_rounds < EVICT_ROUNDS_MAX {
        evict_rounds += 1;
        probe_source.push_str(&format!(
            "int sga_evict_{evict_rounds}(int a) {{ return a * {evict_rounds}; }}\n"
        ));
        let (reply, _sheds) = client::edit_with_retry(&addr, "evict.c", &probe_source, timeout, 10)
            .expect("evict edit");
        assert!(!client::is_shed(&reply), "evict edit shed out: {reply}");
    }
    // Edits are acked at enqueue; wait for the engine to drain before
    // reading the final state (status is ordered behind the queue).
    let status = client::status_t(&addr, timeout).expect("status");
    let status = Json::parse(&status).expect("status json");
    let rounds = status
        .get("rounds")
        .and_then(Json::as_u64)
        .expect("rounds stat") as usize;

    let report_text = client::report_t(&addr, timeout).expect("flooded report");
    let report = Json::parse(&report_text).expect("report json");
    let cold = cold_report(&dir, &opts).expect("cold batch run");
    let converged = report_text == cold.to_compact();
    let crashed = report
        .get("totals")
        .and_then(|t| t.get("crashed"))
        .and_then(Json::as_u64)
        .expect("crashed total");

    let flood = Flood {
        edits: FLOOD_THREADS * FLOOD_EDITS_PER_THREAD + evict_rounds,
        shed: stats.shed(),
        evicted_slow: stats.evicted_slow(),
        rounds,
        round_p50_ms: stats.round_percentile_ms(50).unwrap_or(0),
        round_p95_ms: stats.round_percentile_ms(95).unwrap_or(0),
        crashed,
        converged,
    };
    drop(stalled);
    let _ = client::shutdown_t(&addr, timeout);
    handle.wait();
    let _ = std::fs::remove_dir_all(&dir);
    flood
}

fn main() -> ExitCode {
    let mut gate = false;
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--check" => gate = true,
            other => {
                eprintln!("serve_bench: unexpected argument `{other}`");
                eprintln!("usage: serve_bench [--check]");
                return ExitCode::from(2);
            }
        }
    }

    println!(
        "serve_bench: {UNITS} units x ~{KLOC} kloc, fixed seed {SEED}, \
         {PROBE_ROUNDS} probe edits, cache off"
    );
    let seq = run_at(1);
    let par = run_at(4);
    println!(
        "flood: {FLOOD_THREADS} threads x {FLOOD_EDITS_PER_THREAD} edits, queue_cap=2, \
         stall faults, stalled subscriber over unix socket"
    );
    let flood = run_flood();

    let identical = seq.report_text == par.report_text;
    let mut edit_ms = seq.edit_ms.clone();
    let (p50, p95) = (
        percentile(&mut edit_ms, 50.0),
        percentile(&mut edit_ms, 95.0),
    );
    let inv_min = *seq.invalidated.iter().min().expect("rounds");
    let inv_max = *seq.invalidated.iter().max().expect("rounds");
    println!(
        "cold start: {:.1}ms (jobs=1), {:.1}ms (jobs=4)",
        seq.cold_start_ms, par.cold_start_ms
    );
    println!("single-edit latency (jobs=1): p50 {p50:.1}ms, p95 {p95:.1}ms");
    println!("invalidated per probe edit: min {inv_min}, max {inv_max} (of {UNITS} units)");
    println!(
        "convergence vs cold run: jobs=1 {}, jobs=4 {}; reports identical across jobs: {}",
        seq.converged, par.converged, identical
    );
    println!(
        "flood: {} edits over {} rounds, {} shed, {} evicted_slow, \
         round p50 {}ms p95 {}ms, converged {}",
        flood.edits,
        flood.rounds,
        flood.shed,
        flood.evicted_slow,
        flood.round_p50_ms,
        flood.round_p95_ms,
        flood.converged
    );

    if gate {
        let mut failed = false;
        if seq.crashed > 0 || par.crashed > 0 {
            eprintln!(
                "FAIL: {} unit(s) crashed (jobs=1), {} (jobs=4)",
                seq.crashed, par.crashed
            );
            failed = true;
        } else {
            println!("crashed units: 0 ok");
        }
        if !seq.converged || !par.converged {
            eprintln!("FAIL: daemon report diverged from the cold batch run");
            failed = true;
        } else {
            println!("convergence: daemon == cold batch run ok");
        }
        if !identical {
            eprintln!("FAIL: jobs=1 and jobs=4 reports differ");
            failed = true;
        } else {
            println!("determinism: jobs=1 == jobs=4 ok");
        }
        // The sparse-invalidation gate: a probe edit exports a symbol
        // nothing imports, so re-analysis must spare at least one unit.
        if inv_max >= UNITS {
            eprintln!("FAIL: a probe edit invalidated the whole corpus ({inv_max}/{UNITS})");
            failed = true;
        } else {
            println!("sparse invalidation: max {inv_max}/{UNITS} units ok");
        }
        // Flood gates: overload must actually shed, the stalled subscriber
        // must actually be evicted, and neither may cost convergence.
        if flood.crashed > 0 {
            eprintln!("FAIL: {} unit(s) crashed under flood", flood.crashed);
            failed = true;
        } else {
            println!("flood crashed units: 0 ok");
        }
        if flood.shed == 0 {
            eprintln!("FAIL: flood shed no edits (backpressure untested)");
            failed = true;
        } else {
            println!("flood load shedding: {} shed ok", flood.shed);
        }
        if flood.evicted_slow == 0 {
            eprintln!("FAIL: stalled subscriber was never evicted");
            failed = true;
        } else {
            println!("flood slow-subscriber eviction: {} ok", flood.evicted_slow);
        }
        if !flood.converged {
            eprintln!("FAIL: flooded daemon report diverged from the cold batch run");
            failed = true;
        } else {
            println!("flood convergence: daemon == cold batch run ok");
        }
        return if failed {
            ExitCode::from(1)
        } else {
            println!("serve gate passed");
            ExitCode::SUCCESS
        };
    }

    let report = Json::obj()
        .with("bench", "serve")
        .with(
            "corpus",
            Json::obj()
                .with("units", UNITS)
                .with("kloc", KLOC)
                .with("seed", SEED as usize),
        )
        .with("probe_rounds", PROBE_ROUNDS)
        .with("cold_start_jobs1_ms", seq.cold_start_ms)
        .with("cold_start_jobs4_ms", par.cold_start_ms)
        .with("edit_p50_ms", p50)
        .with("edit_p95_ms", p95)
        .with("invalidated_min", inv_min)
        .with("invalidated_max", inv_max)
        .with("crashed", seq.crashed as usize)
        .with("converged_jobs1", seq.converged)
        .with("converged_jobs4", par.converged)
        .with("reports_identical", identical)
        .with(
            "flood",
            Json::obj()
                .with("threads", FLOOD_THREADS)
                .with("edits", flood.edits)
                .with("rounds", flood.rounds)
                .with("shed", flood.shed)
                .with("evicted_slow", flood.evicted_slow)
                .with("round_p50_ms", flood.round_p50_ms as usize)
                .with("round_p95_ms", flood.round_p95_ms as usize)
                .with("crashed", flood.crashed as usize)
                .with("converged", flood.converged),
        );
    let path = PathBuf::from("BENCH_serve.json");
    std::fs::write(&path, report.to_pretty() + "\n").expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
    ExitCode::SUCCESS
}
