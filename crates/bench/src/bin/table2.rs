//! Regenerates **Table 2**: interval-analysis performance across
//! `Interval_vanilla`, `Interval_base`, and `Interval_sparse`.
//!
//! ```sh
//! cargo run --release -p sga-bench --bin table2 [--quick]
//! ```
//!
//! Each (row, engine) job runs in a fresh subprocess so the peak-RSS column
//! is per-analyzer, as in the paper. `N/A` marks engines the paper reports
//! as ∞ (out of the 24-hour budget) — we skip them by the same row policy.
//! `--quick` limits the sweep to the first 8 rows.

use sga::analysis::interval::{analyze, Engine};
use sga_bench::{
    fmt_memsave, fmt_s, fmt_speedup, run_job_subprocess, serde_json, table1_rows, Measurement,
};
use std::time::Duration;

/// Per-job budget: the paper's 24-hour limit, scaled to the 1:40 substrate.
const JOB_TIMEOUT: Duration = Duration::from_secs(600);

fn run_engine(row: usize, engine: &str) -> Measurement {
    let rows = table1_rows();
    let cfg = &rows[row].config;
    let src = sga::cgen::generate(cfg);
    let program = sga::frontend::parse(&src).expect("generated source parses");
    let engine = match engine {
        "vanilla" => Engine::Vanilla,
        "base" => Engine::Base,
        "sparse" => Engine::Sparse,
        other => panic!("unknown engine {other}"),
    };
    let result = analyze(&program, engine);
    Measurement::from_stats(&result.stats)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    // Child mode: run one job and print JSON.
    if args.len() >= 4 && args[1] == "--job" {
        let row: usize = args[2].parse().expect("row index");
        let m = run_engine(row, &args[3]);
        println!("{}", serde_json::to_string(&m));
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");

    let rows = table1_rows();
    let n = if quick { 8 } else { rows.len() };
    println!(
        "{:<18} | {:>8} {:>7} | {:>8} {:>7} {:>6} {:>6} | {:>7} {:>7} {:>8} {:>7} {:>6} {:>6} | {:>5} {:>5}",
        "Program", "van(s)", "vanMB", "base(s)", "baseMB", "Spd1", "Mem1", "Dep", "Fix",
        "Total", "spMB", "Spd2", "Mem2", "D̂(c)", "Û(c)"
    );
    for (i, row) in rows.iter().take(n).enumerate() {
        let vanilla = if row.run_vanilla {
            run_job_subprocess(i, "vanilla", JOB_TIMEOUT)
        } else {
            None
        };
        let base = if row.run_base {
            run_job_subprocess(i, "base", JOB_TIMEOUT)
        } else {
            None
        };
        let sparse = run_job_subprocess(i, "sparse", JOB_TIMEOUT);
        let Some(sp) = sparse else {
            println!("{:<18} | sparse failed/timed out", row.name);
            continue;
        };
        let (van_s, van_mb) = vanilla.as_ref().map_or(("N/A".into(), "N/A".into()), |m| {
            (fmt_s(m.total_s), format!("{:.0}", m.mem_mb))
        });
        let (base_s, base_mb) = base.as_ref().map_or(("N/A".into(), "N/A".into()), |m| {
            (fmt_s(m.total_s), format!("{:.0}", m.mem_mb))
        });
        println!(
            "{:<18} | {:>8} {:>7} | {:>8} {:>7} {:>6} {:>6} | {:>7} {:>7} {:>8} {:>7} {:>6} {:>6} | {:>5.1} {:>5.1}",
            row.name,
            van_s,
            van_mb,
            base_s,
            base_mb,
            fmt_speedup(vanilla.as_ref().map(|m| m.total_s), base.as_ref().map_or(f64::NAN, |m| m.total_s)),
            fmt_memsave(vanilla.as_ref().map(|m| m.mem_mb), base.as_ref().map_or(f64::NAN, |m| m.mem_mb)),
            fmt_s(sp.dep_s),
            fmt_s(sp.fix_s),
            fmt_s(sp.total_s),
            format!("{:.0}", sp.mem_mb),
            fmt_speedup(base.as_ref().map(|m| m.total_s), sp.total_s),
            fmt_memsave(base.as_ref().map(|m| m.mem_mb), sp.mem_mb),
            sp.avg_defs,
            sp.avg_uses,
        );
    }
    println!("\nSpd1/Mem1: base over vanilla; Spd2/Mem2: sparse over base (paper columns).");
}
