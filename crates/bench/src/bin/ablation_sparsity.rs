//! **Ablation C** — performance tracks sparsity, not program size (§6.3).
//!
//! "The analysis performance is more dependent on the sparsity than the
//! program size … average D̂(c) size of emacs-22.1 is 30 times bigger than
//! the one of ghostscript-9.00." This ablation fixes LOC and sweeps the
//! global-variable density (the interprocedural-flow driver) and the call
//! cycle size, reporting avg |D̂|/|Û| against fixpoint cost.
//!
//! ```sh
//! cargo run --release -p sga-bench --bin ablation_sparsity
//! ```

use sga::analysis::interval::{analyze, Engine};
use sga::cgen::GenConfig;

fn main() {
    println!(
        "{:>8} {:>7} {:>7} | {:>6} {:>6} {:>9} {:>10} {:>9}",
        "globals", "ptrdens", "maxSCC", "D̂(c)", "Û(c)", "depEdges", "fixEvals", "fix(ms)"
    );
    let base = GenConfig::sized(0x5BA125E, 2);
    for (globals, ptr_density, max_scc) in [
        // Sweep 1: global density at fixed pointer density and SCC.
        (6, 0.20, 2),
        (20, 0.20, 2),
        (60, 0.20, 2),
        // Sweep 2: call-cycle size at fixed density (the emacs effect).
        (60, 0.20, 12),
        (60, 0.20, 30),
        (60, 0.20, 60),
    ] {
        let cfg = GenConfig {
            globals,
            global_ptrs: (globals / 6).max(2),
            ptr_density,
            max_scc,
            ..base.clone()
        };
        let src = sga::cgen::generate(&cfg);
        let program = sga::frontend::parse(&src).expect("generated source parses");
        let r = analyze(&program, Engine::Sparse);
        println!(
            "{:>8} {:>7.2} {:>7} | {:>6.1} {:>6.1} {:>9} {:>10} {:>9.0}",
            globals,
            ptr_density,
            max_scc,
            r.stats.avg_defs,
            r.stats.avg_uses,
            r.stats.dep_edges,
            r.stats.iterations,
            r.stats.fix_time.as_secs_f64() * 1000.0,
        );
    }
    println!("\nHigher global/pointer density ⇒ larger D̂/Û ⇒ slower fixpoint at equal LOC (§6.3).");
}
