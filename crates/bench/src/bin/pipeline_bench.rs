//! Benchmarks the batch pipeline: sequential vs parallel wall time over a
//! fixed-seed generated corpus (cache disabled so every run measures real
//! analysis work), a cold/warm cache pass measuring the hit rate, and a
//! dependency-backend race (`--dep-backend bdd` vs `csr`) measuring
//! per-backend wall time and peak RSS in separate child processes, and an
//! isolation race (`--isolation thread` vs `process`) measuring per-mode
//! wall time plus the worker-pool kill/retry counters.
//! Writes `BENCH_pipeline.json` into the working directory and prints a
//! small table.
//!
//! With `--check <baseline.json>` it instead *gates* against a checked-in
//! baseline: the run fails (exit 1) if the open-alarm count, the definite
//! alarm count, or the warm cache hit rate regresses, if the octagon
//! triage stage discharges nothing, if the path-condition layer
//! discharges nothing over the golden alarm corpus, if any unit degrades
//! or crashes, if the post-fixpoint validation oracle marks any unit
//! `invalid`, or if the two dependency backends produce canonical reports
//! that are not byte-identical (those are hard gates, independent of the
//! baseline). Timings are reported but never gated — they measure
//! whatever hardware runs them (see the container caveat in ROADMAP.md: on
//! a single-CPU host the parallel schedule cannot beat the sequential one).

use sga::analysis::depstore::DepBackend;
use sga::pipeline::{run, PipelineOptions, Project};
use sga::utils::{stats, Json};
use std::process::ExitCode;
use std::time::Instant;

const CORPUS: Project = Project::Corpus {
    units: 8,
    kloc: 2,
    seed: 0xFEED,
};

struct Measured {
    secs: f64,
    units: u64,
    alarms: u64,
    discharged: u64,
    definite: u64,
    degraded: u64,
    crashed: u64,
    fingerprint: String,
}

fn measure(project: &Project, jobs: usize) -> Measured {
    let opts = PipelineOptions {
        jobs,
        canonical: true,
        ..PipelineOptions::default()
    };
    let start = Instant::now();
    let report = run(project, &opts).expect("pipeline run");
    let secs = start.elapsed().as_secs_f64();
    let totals = report.get("totals").expect("totals");
    let alarms = totals.get("alarms").and_then(Json::as_u64).expect("alarms");
    let discharged = totals
        .get("discharged")
        .and_then(Json::as_u64)
        .expect("discharged");
    let definite = totals
        .get("definite")
        .and_then(Json::as_u64)
        .expect("definite");
    let degraded = totals
        .get("degraded")
        .and_then(Json::as_u64)
        .expect("degraded");
    let crashed = totals
        .get("crashed")
        .and_then(Json::as_u64)
        .expect("crashed");
    let fingerprint: String = report
        .get("units")
        .and_then(Json::as_arr)
        .expect("units")
        .iter()
        .map(|u| {
            u.get("fingerprint")
                .and_then(Json::as_str)
                .expect("fingerprint")
        })
        .collect::<Vec<_>>()
        .join("+");
    let units = totals.get("units").and_then(Json::as_u64).expect("units");
    println!(
        "jobs={jobs}: {secs:.3}s  ({units} units, {} procs, {alarms} open alarms, \
         {discharged} discharged, {definite} definite)",
        totals.get("procs").unwrap().as_u64().unwrap(),
    );
    Measured {
        secs,
        units,
        alarms,
        discharged,
        definite,
        degraded,
        crashed,
        fingerprint,
    }
}

/// One validated pass (jobs=1, cache off): every unit re-checked by the
/// post-fixpoint oracle. Returns the `validated` and `invalid` totals.
fn measure_validation(project: &Project) -> (u64, u64) {
    let opts = PipelineOptions {
        jobs: 1,
        canonical: true,
        validate: true,
        ..PipelineOptions::default()
    };
    let start = Instant::now();
    let report = run(project, &opts).expect("validated run");
    let totals = report.get("totals").expect("totals");
    let validated = totals
        .get("validated")
        .and_then(Json::as_u64)
        .expect("validated");
    let invalid = totals
        .get("invalid")
        .and_then(Json::as_u64)
        .expect("invalid");
    println!(
        "validation oracle: {validated} validated, {invalid} invalid ({:.3}s)",
        start.elapsed().as_secs_f64()
    );
    (validated, invalid)
}

/// Wall time, peak RSS and canonical report text of one dependency-backend
/// run, as reported by a child process.
struct BackendRun {
    backend: DepBackend,
    secs: f64,
    peak_rss_bytes: u64,
    report: String,
}

/// Hidden child mode behind `--measure-backend`: run the corpus once with
/// one backend in a fresh process, so `VmHWM` (which only ever grows over
/// a process's lifetime) measures that backend alone. Writes the canonical
/// report to `out_path` and prints a one-line JSON summary on stdout.
fn measure_backend_child(backend: DepBackend, out_path: &str) -> ExitCode {
    let opts = PipelineOptions {
        jobs: 1,
        canonical: true,
        dep_backend: backend,
        ..PipelineOptions::default()
    };
    let start = Instant::now();
    let report = run(&CORPUS, &opts).expect("backend run");
    let secs = start.elapsed().as_secs_f64();
    std::fs::write(out_path, report.to_pretty() + "\n").expect("write backend report");
    let summary = Json::obj().with("secs", secs).with(
        "peak_rss_bytes",
        stats::peak_rss_bytes().unwrap_or(0) as usize,
    );
    println!("{}", summary.to_compact());
    ExitCode::SUCCESS
}

/// Races the two dependency backends, each in its own child process, and
/// compares their canonical reports byte-for-byte.
fn measure_backends() -> (Vec<BackendRun>, bool) {
    let exe = std::env::current_exe().expect("current_exe");
    let mut runs = Vec::new();
    for backend in [DepBackend::Csr, DepBackend::Bdd] {
        let out = std::env::temp_dir().join(format!(
            "sga-bench-backend-{backend}-{}.json",
            std::process::id()
        ));
        let output = std::process::Command::new(&exe)
            .arg("--measure-backend")
            .arg(backend.as_str())
            .arg(&out)
            .output()
            .expect("spawn backend child");
        assert!(
            output.status.success(),
            "backend child ({backend}) failed: {}",
            String::from_utf8_lossy(&output.stderr)
        );
        let stdout = String::from_utf8_lossy(&output.stdout);
        let line = stdout.lines().last().expect("child summary line");
        let summary = Json::parse(line).expect("child summary JSON");
        let secs = summary.get("secs").and_then(Json::as_f64).expect("secs");
        let peak_rss_bytes = summary
            .get("peak_rss_bytes")
            .and_then(Json::as_u64)
            .expect("peak_rss_bytes");
        let report = std::fs::read_to_string(&out).expect("child report");
        let _ = std::fs::remove_file(&out);
        println!(
            "dep-backend {backend}: {secs:.3}s, peak RSS {:.1} MiB",
            peak_rss_bytes as f64 / (1024.0 * 1024.0)
        );
        runs.push(BackendRun {
            backend,
            secs,
            peak_rss_bytes,
            report,
        });
    }
    let identical = runs.windows(2).all(|w| w[0].report == w[1].report);
    (runs, identical)
}

/// Per-mode wall time and worker-pool counters from racing the two
/// isolation modes over the same corpus.
struct IsolationRuns {
    thread_secs: f64,
    process_secs: f64,
    counters: sga::pipeline::worker::IsolationSnapshot,
    identical: bool,
}

/// One canonical pass per isolation mode (jobs=1, cache off). Process
/// isolation re-execs this binary per unit (see the dispatch in `main`),
/// so its wall time includes the spawn overhead — the price of surviving
/// aborts. The canonical reports must stay byte-identical.
fn measure_isolation() -> IsolationRuns {
    use sga::pipeline::IsolationMode;
    let before = sga::pipeline::worker::stats();
    let mut secs = [0.0f64; 2];
    let mut reports = Vec::new();
    for (slot, mode) in [IsolationMode::Thread, IsolationMode::Process]
        .into_iter()
        .enumerate()
    {
        let opts = PipelineOptions {
            jobs: 1,
            canonical: true,
            isolation: mode,
            ..PipelineOptions::default()
        };
        let start = Instant::now();
        let report = run(&CORPUS, &opts).expect("isolation run");
        secs[slot] = start.elapsed().as_secs_f64();
        reports.push(report.to_pretty());
    }
    let counters = sga::pipeline::worker::stats().since(&before);
    println!(
        "isolation: thread {:.3}s, process {:.3}s (workers killed {}, retried {}, \
         oom {}, stalled {})",
        secs[0], secs[1], counters.killed, counters.retried, counters.oom, counters.stalls
    );
    IsolationRuns {
        thread_secs: secs[0],
        process_secs: secs[1],
        counters,
        identical: reports[0] == reports[1],
    }
}

/// The path-condition triage layer over the golden alarm corpus: wall
/// time of a `--triage both` pass plus how many alarms the path layer
/// (alone) discharged. The generated bench corpus rarely produces dead
/// dominating guards, so this measurement runs over `tests/alarms/`,
/// whose `path_*.c` cases guarantee path discharges.
struct TriageRun {
    mode: &'static str,
    discharged_path: u64,
    secs: f64,
}

fn measure_triage() -> TriageRun {
    let opts = PipelineOptions {
        jobs: 1,
        canonical: true,
        ..PipelineOptions::default()
    };
    let project = Project::Dir("tests/alarms".into());
    let start = Instant::now();
    let report = run(&project, &opts).expect("triage run over tests/alarms");
    let secs = start.elapsed().as_secs_f64();
    let discharged_path = report
        .get("totals")
        .and_then(|t| t.get("discharged_path"))
        .and_then(Json::as_u64)
        .expect("discharged_path");
    println!(
        "triage (mode {}): {discharged_path} path-discharged alarm(s) over \
         tests/alarms ({secs:.3}s)",
        opts.triage.name()
    );
    TriageRun {
        mode: opts.triage.name(),
        discharged_path,
        secs,
    }
}

/// Cold+warm pass over a throwaway cache directory; returns the warm run's
/// hit rate (1.0 = every procedure served from cache).
fn measure_hit_rate(project: &Project) -> f64 {
    let dir = std::env::temp_dir().join(format!("sga-bench-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let opts = PipelineOptions {
        jobs: 1,
        canonical: true,
        cache_dir: Some(dir.clone()),
        ..PipelineOptions::default()
    };
    run(project, &opts).expect("cold cache run");
    let warm = run(project, &opts).expect("warm cache run");
    let _ = std::fs::remove_dir_all(&dir);
    warm.get("totals")
        .and_then(|t| t.get("hit_rate"))
        .and_then(Json::as_f64)
        .expect("hit_rate")
}

#[allow(clippy::too_many_arguments)]
fn check(
    baseline_path: &str,
    m: &Measured,
    hit_rate: f64,
    validated: u64,
    invalid: u64,
    backends_identical: bool,
    isolation: &IsolationRuns,
    triage: &TriageRun,
) -> ExitCode {
    let text = match std::fs::read_to_string(baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("pipeline_bench: cannot read {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match Json::parse(&text) {
        Ok(j) => j,
        Err(e) => {
            eprintln!("pipeline_bench: cannot parse {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let base_alarms = baseline
        .get("alarms")
        .and_then(Json::as_u64)
        .expect("baseline alarms");
    let base_hit_rate = baseline
        .get("warm_hit_rate")
        .and_then(Json::as_f64)
        .expect("baseline warm_hit_rate");
    let base_definite = baseline
        .get("definite")
        .and_then(Json::as_u64)
        .expect("baseline definite");

    let mut failed = false;
    if m.alarms > base_alarms {
        eprintln!(
            "FAIL: alarm count regressed: {} > baseline {base_alarms}",
            m.alarms
        );
        failed = true;
    } else {
        println!("alarms: {} (baseline {base_alarms}) ok", m.alarms);
    }
    // New definite alarms are must-fix findings: any growth over the
    // baseline fails the gate outright.
    if m.definite > base_definite {
        eprintln!(
            "FAIL: new definite alarms: {} > baseline {base_definite}",
            m.definite
        );
        failed = true;
    } else {
        println!(
            "definite alarms: {} (baseline {base_definite}) ok",
            m.definite
        );
    }
    // Hard gate, independent of the baseline: the octagon triage stage
    // must discharge at least one interval alarm on the bench corpus —
    // zero means the discharge path stopped working.
    if m.discharged == 0 {
        eprintln!("FAIL: octagon triage discharged no alarms");
        failed = true;
    } else {
        println!("octagon-discharged alarms: {} ok", m.discharged);
    }
    // Hard gates, independent of the baseline: the bench corpus under the
    // default (unbounded) budget must finish every unit cleanly — a
    // degraded or crashed unit here means a real robustness regression.
    if m.degraded > 0 {
        eprintln!(
            "FAIL: {} unit(s) degraded under the default budget",
            m.degraded
        );
        failed = true;
    } else {
        println!("degraded units: 0 ok");
    }
    if m.crashed > 0 {
        eprintln!("FAIL: {} unit(s) crashed", m.crashed);
        failed = true;
    } else {
        println!("crashed units: 0 ok");
    }
    // The oracle gate: every unit re-checked, none invalid. An `invalid`
    // here means the analysis (or its cache) broke a contract the paper
    // proves — the hardest possible failure, gated unconditionally.
    if invalid > 0 || validated < m.units {
        eprintln!(
            "FAIL: validation oracle: {validated}/{} validated, {invalid} invalid",
            m.units
        );
        failed = true;
    } else {
        println!(
            "validation oracle: {validated}/{} validated, 0 invalid ok",
            m.units
        );
    }
    // Hard gate, independent of the baseline: the BDD and CSR dependency
    // backends must produce byte-identical canonical reports — the same
    // invariant the repo holds across `--jobs`, extended to the lowered
    // representation.
    if !backends_identical {
        eprintln!("FAIL: bdd/csr canonical reports differ");
        failed = true;
    } else {
        println!("backend reports byte-identical ok");
    }
    // Hard gate, independent of the baseline: process-isolated workers must
    // reproduce the in-thread canonical report byte-for-byte, and a clean
    // corpus must need no kills or retries.
    if !isolation.identical {
        eprintln!("FAIL: thread/process canonical reports differ");
        failed = true;
    } else {
        println!("isolation reports byte-identical ok");
    }
    if isolation.counters.killed > 0 || isolation.counters.retried > 0 {
        eprintln!(
            "FAIL: clean corpus needed worker intervention: killed {}, retried {}",
            isolation.counters.killed, isolation.counters.retried
        );
        failed = true;
    } else {
        println!("isolated workers: 0 killed, 0 retried ok");
    }
    // Hard gate, independent of the baseline: the path-condition layer
    // must discharge at least one alarm over the golden corpus — zero
    // means the dominating-guard walk stopped finding its cases.
    if triage.discharged_path == 0 {
        eprintln!("FAIL: path triage discharged no alarms over tests/alarms");
        failed = true;
    } else {
        println!(
            "path-discharged alarms (mode {}): {} ok",
            triage.mode, triage.discharged_path
        );
    }
    if hit_rate < base_hit_rate {
        eprintln!(
            "FAIL: warm cache hit rate regressed: {hit_rate:.3} < baseline {base_hit_rate:.3}"
        );
        failed = true;
    } else {
        println!("warm hit rate: {hit_rate:.3} (baseline {base_hit_rate:.3}) ok");
    }
    if failed {
        ExitCode::from(1)
    } else {
        println!("bench gate passed");
        ExitCode::SUCCESS
    }
}

fn main() -> ExitCode {
    // The isolation measurement's worker pool re-execs this binary with
    // the hidden `__worker` argument (the pool spawns `current_exe()`);
    // dispatch before anything else so a child never runs the bench
    // driver.
    if std::env::args().nth(1).as_deref() == Some(sga::pipeline::worker::WORKER_ARG) {
        return ExitCode::from(sga::pipeline::worker::worker_main() as u8);
    }
    let mut baseline: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--check" => match args.next() {
                Some(p) => baseline = Some(p),
                None => {
                    eprintln!("usage: pipeline_bench [--check BASELINE.json]");
                    return ExitCode::from(2);
                }
            },
            // Internal re-exec entry point used by `measure_backends`.
            "--measure-backend" => {
                let (Some(name), Some(out)) = (args.next(), args.next()) else {
                    eprintln!("usage: pipeline_bench --measure-backend bdd|csr OUT.json");
                    return ExitCode::from(2);
                };
                let Some(backend) = DepBackend::parse(&name) else {
                    eprintln!("pipeline_bench: unknown backend `{name}`");
                    return ExitCode::from(2);
                };
                return measure_backend_child(backend, &out);
            }
            other => {
                eprintln!("pipeline_bench: unexpected argument `{other}`");
                return ExitCode::from(2);
            }
        }
    }

    let project = CORPUS;
    println!("pipeline_bench: 8 units x ~2 kloc, fixed seed 0xFEED, cache off");

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let seq = measure(&project, 1);
    let par = measure(&project, 4);
    assert_eq!(
        seq.fingerprint, par.fingerprint,
        "parallel run changed the analysis results"
    );
    assert_eq!(
        seq.alarms, par.alarms,
        "parallel run changed the alarm count"
    );
    assert_eq!(seq.crashed, 0, "bench corpus must analyze without crashes");

    let speedup = seq.secs / par.secs;
    println!("speedup (jobs=4 over jobs=1): {speedup:.2}x on {cpus} cpu(s)");
    let hit_rate = measure_hit_rate(&project);
    println!("warm cache hit rate: {hit_rate:.3}");
    let (validated, invalid) = measure_validation(&project);
    let (backend_runs, backends_identical) = measure_backends();
    let isolation = measure_isolation();
    let triage = measure_triage();

    if let Some(path) = baseline {
        return check(
            &path,
            &seq,
            hit_rate,
            validated,
            invalid,
            backends_identical,
            &isolation,
            &triage,
        );
    }
    assert!(
        backends_identical,
        "bdd/csr canonical reports differ on the bench corpus"
    );
    assert!(
        isolation.identical,
        "thread/process canonical reports differ on the bench corpus"
    );

    let report = Json::obj()
        .with("bench", "pipeline")
        .with(
            "corpus",
            Json::obj()
                .with("units", 8usize)
                .with("kloc", 2usize)
                .with("seed", 0xFEEDusize),
        )
        .with("cpus", cpus)
        .with("alarms", seq.alarms as usize)
        .with("discharged", seq.discharged as usize)
        .with("definite", seq.definite as usize)
        .with("degraded", seq.degraded as usize)
        .with("crashed", seq.crashed as usize)
        .with("validated", validated as usize)
        .with("invalid", invalid as usize)
        .with("warm_hit_rate", hit_rate)
        .with("sequential_secs", seq.secs)
        .with("parallel_jobs4_secs", par.secs)
        .with("speedup", speedup)
        .with("results_identical", true)
        .with("backends", {
            let mut obj = Json::obj();
            for r in &backend_runs {
                obj.set(
                    r.backend.as_str(),
                    Json::obj()
                        .with("secs", r.secs)
                        .with("peak_rss_bytes", r.peak_rss_bytes as usize),
                );
            }
            obj
        })
        .with("backends_identical", true)
        .with(
            "isolation",
            Json::obj()
                .with("thread_secs", isolation.thread_secs)
                .with("process_secs", isolation.process_secs)
                .with("killed", isolation.counters.killed)
                .with("retried", isolation.counters.retried)
                .with("oom", isolation.counters.oom)
                .with("stalls", isolation.counters.stalls)
                .with("identical", true),
        )
        .with(
            "triage",
            Json::obj()
                .with("mode", triage.mode)
                .with("discharged_path", triage.discharged_path as usize)
                .with("triage_secs", triage.secs),
        );
    std::fs::write("BENCH_pipeline.json", report.to_pretty() + "\n")
        .expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
    ExitCode::SUCCESS
}
