//! Benchmarks the batch pipeline: sequential vs parallel wall time over a
//! fixed-seed generated corpus, cache disabled so every run measures real
//! analysis work. Writes `BENCH_pipeline.json` next to the working
//! directory and prints a small table.
//!
//! Note the container caveat recorded in ROADMAP.md: on a single-CPU host
//! the parallel schedule cannot beat the sequential one (thread scheduling
//! only adds overhead); the numbers written here are honest measurements of
//! whatever hardware runs them, not the paper-style speedup table.

use sga::pipeline::{run, PipelineOptions, Project};
use sga::utils::Json;
use std::time::Instant;

fn measure(project: &Project, jobs: usize) -> (f64, String) {
    let opts = PipelineOptions {
        jobs,
        canonical: true,
        ..PipelineOptions::default()
    };
    let start = Instant::now();
    let report = run(project, &opts).expect("pipeline run");
    let secs = start.elapsed().as_secs_f64();
    let totals = report.get("totals").expect("totals");
    let fingerprint: String = report
        .get("units")
        .and_then(Json::as_arr)
        .expect("units")
        .iter()
        .map(|u| {
            u.get("fingerprint")
                .and_then(Json::as_str)
                .expect("fingerprint")
        })
        .collect::<Vec<_>>()
        .join("+");
    println!(
        "jobs={jobs}: {secs:.3}s  ({} units, {} procs, {} alarms)",
        totals.get("units").unwrap().as_u64().unwrap(),
        totals.get("procs").unwrap().as_u64().unwrap(),
        totals.get("alarms").unwrap().as_u64().unwrap(),
    );
    (secs, fingerprint)
}

fn main() {
    let project = Project::Corpus {
        units: 8,
        kloc: 2,
        seed: 0xFEED,
    };
    println!("pipeline_bench: 8 units x ~2 kloc, fixed seed 0xFEED, cache off");

    let cpus = std::thread::available_parallelism().map_or(1, |n| n.get());
    let (seq, seq_fp) = measure(&project, 1);
    let (par, par_fp) = measure(&project, 4);
    assert_eq!(seq_fp, par_fp, "parallel run changed the analysis results");

    let speedup = seq / par;
    println!("speedup (jobs=4 over jobs=1): {speedup:.2}x on {cpus} cpu(s)");

    let report = Json::obj()
        .with("bench", "pipeline")
        .with(
            "corpus",
            Json::obj()
                .with("units", 8usize)
                .with("kloc", 2usize)
                .with("seed", 0xFEEDusize),
        )
        .with("cpus", cpus)
        .with("sequential_secs", seq)
        .with("parallel_jobs4_secs", par)
        .with("speedup", speedup)
        .with("results_identical", true);
    std::fs::write("BENCH_pipeline.json", report.to_pretty() + "\n")
        .expect("write BENCH_pipeline.json");
    println!("wrote BENCH_pipeline.json");
}
