//! Regenerates **Table 1**: benchmark characteristics.
//!
//! ```sh
//! cargo run --release -p sga-bench --bin table1
//! ```
//!
//! Columns mirror the paper: LOC, Functions, Statements, Blocks, maxSCC,
//! AbsLocs (abstract locations created by the interval analysis). Paper
//! LOC/maxSCC are shown alongside for provenance; generated programs are
//! scaled 1:40.

use sga::analysis::{defuse, preanalysis};
use sga::ir::metrics::ProgramMetrics;
use sga_bench::table1_rows;

fn main() {
    println!(
        "{:<18} {:>9} {:>8} {:>6} {:>11} {:>8} {:>7} {:>8} {:>9} {:>8}",
        "Program",
        "paperKLOC",
        "LOC",
        "Funcs",
        "Statements",
        "Blocks",
        "maxSCC",
        "(paper)",
        "AbsLocs",
        "parse_ms"
    );
    for row in table1_rows() {
        let start = std::time::Instant::now();
        let src = sga::cgen::generate(&row.config);
        let loc = src.lines().count();
        let program = sga::frontend::parse(&src).expect("generated source parses");
        let parse_ms = start.elapsed().as_millis();
        let pre = preanalysis::run(&program);
        let metrics = ProgramMetrics::measure(&program, &pre.callgraph);
        let du = defuse::compute(&program, &pre);
        println!(
            "{:<18} {:>9} {:>8} {:>6} {:>11} {:>8} {:>7} {:>8} {:>9} {:>8}",
            row.name,
            row.paper_kloc,
            loc,
            metrics.functions,
            metrics.statements,
            metrics.blocks,
            metrics.max_scc,
            row.paper_max_scc,
            du.locs.len(),
            parse_ms,
        );
    }
}
