//! Regenerates **Table 3**: octagon-analysis performance across
//! `Octagon_vanilla`, `Octagon_base`, and `Octagon_sparse` on the 9 smaller
//! benchmark rows.
//!
//! ```sh
//! cargo run --release -p sga-bench --bin table3 [--quick]
//! ```
//!
//! Per the paper: the vanilla octagon analyzer only finishes on the two
//! smallest rows, the localized baseline on the six smallest; the sparse
//! analyzer covers all nine. `--quick` limits the sweep to 5 rows.

use sga::analysis::octagon;
use sga_bench::{
    fmt_memsave, fmt_s, fmt_speedup, run_job_subprocess, serde_json, table3_rows, Measurement,
};
use std::time::Duration;

const JOB_TIMEOUT: Duration = Duration::from_secs(900);

fn run_engine(row: usize, engine: &str) -> Measurement {
    let rows = table3_rows();
    let cfg = &rows[row].config;
    let src = sga::cgen::generate(cfg);
    let program = sga::frontend::parse(&src).expect("generated source parses");
    let engine = match engine {
        "vanilla" => octagon::Engine::Vanilla,
        "base" => octagon::Engine::Base,
        "sparse" => octagon::Engine::Sparse,
        other => panic!("unknown engine {other}"),
    };
    let result = octagon::analyze(&program, engine);
    Measurement::from_stats(&result.stats)
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.len() >= 4 && args[1] == "--job" {
        let row: usize = args[2].parse().expect("row index");
        let m = run_engine(row, &args[3]);
        println!("{}", serde_json::to_string(&m));
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");

    let rows = table3_rows();
    let n = if quick { 5 } else { rows.len() };
    println!(
        "{:<18} | {:>8} {:>7} | {:>8} {:>7} {:>6} {:>6} | {:>7} {:>7} {:>8} {:>7} {:>6} {:>6} | {:>5} {:>5}",
        "Program", "van(s)", "vanMB", "base(s)", "baseMB", "Spd1", "Mem1", "Dep", "Fix",
        "Total", "spMB", "Spd2", "Mem2", "D̂(c)", "Û(c)"
    );
    for (i, row) in rows.iter().take(n).enumerate() {
        let vanilla = if row.run_vanilla {
            run_job_subprocess(i, "vanilla", JOB_TIMEOUT)
        } else {
            None
        };
        let base = if row.run_base {
            run_job_subprocess(i, "base", JOB_TIMEOUT)
        } else {
            None
        };
        let sparse = run_job_subprocess(i, "sparse", JOB_TIMEOUT);
        let Some(sp) = sparse else {
            println!("{:<18} | sparse failed/timed out", row.name);
            continue;
        };
        let (van_s, van_mb) = vanilla.as_ref().map_or(("N/A".into(), "N/A".into()), |m| {
            (fmt_s(m.total_s), format!("{:.0}", m.mem_mb))
        });
        let (base_s, base_mb) = base.as_ref().map_or(("N/A".into(), "N/A".into()), |m| {
            (fmt_s(m.total_s), format!("{:.0}", m.mem_mb))
        });
        println!(
            "{:<18} | {:>8} {:>7} | {:>8} {:>7} {:>6} {:>6} | {:>7} {:>7} {:>8} {:>7} {:>6} {:>6} | {:>5.1} {:>5.1}",
            row.name,
            van_s,
            van_mb,
            base_s,
            base_mb,
            fmt_speedup(vanilla.as_ref().map(|m| m.total_s), base.as_ref().map_or(f64::NAN, |m| m.total_s)),
            fmt_memsave(vanilla.as_ref().map(|m| m.mem_mb), base.as_ref().map_or(f64::NAN, |m| m.mem_mb)),
            fmt_s(sp.dep_s),
            fmt_s(sp.fix_s),
            fmt_s(sp.total_s),
            format!("{:.0}", sp.mem_mb),
            fmt_speedup(base.as_ref().map(|m| m.total_s), sp.total_s),
            fmt_memsave(base.as_ref().map(|m| m.mem_mb), sp.mem_mb),
            sp.avg_defs,
            sp.avg_uses,
        );
    }
    println!("\nSpd1/Mem1: base over vanilla; Spd2/Mem2: sparse over base (paper columns).");
}
