//! **Ablation B** — the §5 bypass optimization on/off.
//!
//! "Even when x is not used inside g, value of x is propagated to h only
//! after it is first propagated to g … This optimization makes the analysis
//! more sparse, leading to a significant speed up." This ablation builds
//! deep call chains with pass-through middle procedures and measures edge
//! counts, fixpoint evaluations, and times both ways — plus a result-
//! equality check (the optimization must be precision-neutral).
//!
//! ```sh
//! cargo run --release -p sga-bench --bin ablation_bypass
//! ```

use sga::analysis::depgen::DepGenOptions;
use sga::analysis::interval::{analyze_with, AnalyzeOptions, Engine};
use sga::domains::Lattice;
use std::fmt::Write as _;

/// Builds a depth-`n` call chain where only the leaf touches the globals.
fn chain_program(depth: usize, globals: usize) -> String {
    let mut src = String::new();
    for g in 0..globals {
        let _ = writeln!(src, "int g{g} = {g};");
    }
    // Leaf uses & defines every global.
    let _ = writeln!(src, "int f0(int x) {{");
    for g in 0..globals {
        let _ = writeln!(src, "  g{g} = g{g} + 1;");
    }
    let _ = writeln!(src, "  return x; }}");
    // Middle procedures neither use nor define globals.
    for i in 1..depth {
        let _ = writeln!(
            src,
            "int f{i}(int x) {{ int t = x + 1; return f{}(t); }}",
            i - 1
        );
    }
    let _ = writeln!(
        src,
        "int main() {{ int r = f{}(0); int s = g0; return r + s; }}",
        depth - 1
    );
    src
}

fn main() {
    println!(
        "{:>6} {:>8} | {:>10} {:>10} {:>10} | {:>10} {:>10} {:>10} | {:>7}",
        "depth",
        "globals",
        "edges_off",
        "evals_off",
        "fix_off",
        "edges_on",
        "evals_on",
        "fix_on",
        "equal?"
    );
    for (depth, globals) in [(10, 10), (20, 20), (40, 40), (60, 60)] {
        let src = chain_program(depth, globals);
        let program = sga::frontend::parse(&src).expect("chain program parses");
        let off = analyze_with(
            &program,
            Engine::Sparse,
            AnalyzeOptions {
                depgen: DepGenOptions { bypass: false },
                ..Default::default()
            },
        );
        let on = analyze_with(
            &program,
            Engine::Sparse,
            AnalyzeOptions {
                depgen: DepGenOptions { bypass: true },
                ..Default::default()
            },
        );
        // Precision neutrality.
        let mut equal = true;
        for (cp, st) in &on.values {
            for (loc, v) in st.iter() {
                if !v.is_bottom() && *v != off.value_at(*cp, loc) {
                    equal = false;
                }
            }
        }
        println!(
            "{:>6} {:>8} | {:>10} {:>10} {:>9.0}ms | {:>10} {:>10} {:>9.0}ms | {:>7}",
            depth,
            globals,
            off.stats.dep_edges,
            off.stats.iterations,
            off.stats.fix_time.as_secs_f64() * 1000.0,
            on.stats.dep_edges,
            on.stats.iterations,
            on.stats.fix_time.as_secs_f64() * 1000.0,
            if equal { "yes" } else { "NO" },
        );
    }
    println!("\nedges/evals with the optimization off vs on; results must stay equal.");
}
