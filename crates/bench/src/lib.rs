//! Shared harness for the table-regeneration binaries.
//!
//! The paper's Table 1 lists 16 open-source C packages. Each row here is a
//! synthetic stand-in with the same *shape*: source size (scaled 1:40 —
//! our substrate is a from-scratch analyzer on one laptop core, the paper
//! used a 3 GHz Xeon with a 24-hour budget), function count, global
//! density, and — crucially — the call graph's largest SCC, which §6
//! identifies as the real cost driver (nethack/vim/emacs rows). Paper SCC
//! sizes are scaled 1:10 and capped by the row's function count.
//!
//! Every measurement binary runs each (row, engine) job in a fresh
//! subprocess so peak-RSS readings are isolated, mirroring the paper's
//! per-analyzer memory columns.

use sga::cgen::GenConfig;
use std::time::Duration;

/// One benchmark row: the paper's package it mirrors plus generator knobs.
#[derive(Clone, Debug)]
pub struct BenchRow {
    /// Paper benchmark this row stands in for.
    pub name: &'static str,
    /// The paper's reported LOC (for the table's provenance column).
    pub paper_kloc: usize,
    /// The paper's maxSCC.
    pub paper_max_scc: usize,
    /// Our scaled generator configuration.
    pub config: GenConfig,
    /// Which engines are expected to finish in reasonable time (mirrors the
    /// ∞ entries of Tables 2–3).
    pub run_vanilla: bool,
    /// Whether the localized baseline runs on this row.
    pub run_base: bool,
}

/// Scale factor from paper LOC to generated LOC.
pub const LOC_SCALE: usize = 40;

/// The 16 rows of Table 1, scaled.
pub fn table1_rows() -> Vec<BenchRow> {
    // (name, paper KLOC, paper maxSCC, vanilla?, base?)
    let spec: [(&'static str, usize, usize, bool, bool); 16] = [
        ("gzip-1.2.4a", 7, 2, true, true),
        ("bc-1.06", 13, 1, true, true),
        ("tar-1.13", 20, 13, true, true),
        ("less-382", 23, 46, true, true),
        ("make-3.76.1", 27, 57, true, true),
        ("wget-1.9", 35, 13, true, true),
        ("screen-4.0.2", 45, 65, false, true),
        ("a2ps-4.14", 64, 6, false, true),
        // The paper reports Interval_base as ∞ from sendmail on; we let it
        // run under the per-job timeout instead, so the crossover is
        // *measured* rather than asserted.
        ("sendmail-8.13.6", 130, 60, false, true),
        ("nethack-3.3.0", 211, 997, false, true),
        ("vim60", 227, 1668, false, true),
        ("emacs-22.1", 399, 1554, false, true),
        ("python-2.5.1", 435, 723, false, true),
        ("linux-3.0", 710, 493, false, true),
        ("gimp-2.6", 959, 2, false, true),
        ("ghostscript-9.00", 1363, 39, false, true),
    ];
    spec.iter()
        .enumerate()
        .map(
            |(i, &(name, paper_kloc, paper_max_scc, run_vanilla, run_base))| {
                let loc = (paper_kloc * 1000 / LOC_SCALE).max(150);
                let functions = (loc / 25).max(4);
                let mut config = GenConfig::sized(0x5EED_0000 + i as u64, 1);
                config.target_loc = loc;
                config.functions = functions;
                config.globals = (loc / 90).max(6);
                config.global_ptrs = (loc / 400).max(2);
                // Paper SCCs scaled 1:10, at least the paper's small values, at
                // most half the functions.
                config.max_scc = (paper_max_scc / 10)
                    .max(paper_max_scc.min(4))
                    .min(functions / 2)
                    .max(1);
                BenchRow {
                    name,
                    paper_kloc,
                    paper_max_scc,
                    config,
                    run_vanilla,
                    run_base,
                }
            },
        )
        .collect()
}

/// Octagon rows: the 9 smaller packages of Table 3, scaled further (the
/// relational domain is an order of magnitude heavier, as in the paper).
pub fn table3_rows() -> Vec<BenchRow> {
    let mut rows: Vec<BenchRow> = table1_rows().into_iter().take(9).collect();
    for (i, row) in rows.iter_mut().enumerate() {
        row.config.target_loc = (row.config.target_loc / 4).max(120);
        row.config.functions = (row.config.target_loc / 25).max(4);
        row.config.globals = (row.config.target_loc / 90).max(6);
        row.config.max_scc = row.config.max_scc.min(row.config.functions / 2).max(1);
        // Paper: octagon-vanilla finishes only on the 2 smallest rows;
        // octagon-base on the 6 smallest.
        row.run_vanilla = i < 2;
        row.run_base = i < 6;
    }
    rows
}

/// Measurement of one (row, engine) job, exchanged with subprocesses as
/// JSON lines.
#[derive(Clone, Debug, Default)]
pub struct Measurement {
    /// `Dep` column (pre-analysis + dependency generation), seconds.
    pub dep_s: f64,
    /// `Fix` column, seconds.
    pub fix_s: f64,
    /// `Total` column, seconds.
    pub total_s: f64,
    /// Peak RSS in MB.
    pub mem_mb: f64,
    /// Average |D̂(c)|.
    pub avg_defs: f64,
    /// Average |Û(c)|.
    pub avg_uses: f64,
    /// Abstract locations (or packs).
    pub locs: usize,
    /// Fixpoint node evaluations.
    pub iterations: usize,
}

impl Measurement {
    /// Builds from analysis stats plus the current peak RSS.
    pub fn from_stats(stats: &sga::analysis::stats::AnalysisStats) -> Measurement {
        Measurement {
            dep_s: stats.dep_phase().as_secs_f64(),
            fix_s: stats.fix_time.as_secs_f64(),
            total_s: stats.total_time.as_secs_f64(),
            mem_mb: stats.peak_mem_bytes.unwrap_or(0) as f64 / (1024.0 * 1024.0),
            avg_defs: stats.avg_defs,
            avg_uses: stats.avg_uses,
            locs: stats.num_locs,
            iterations: stats.iterations,
        }
    }
}

/// Runs `current_exe --job <row> <engine>` in a fresh subprocess and parses
/// its JSON measurement (isolated peak RSS). `None` when the child failed
/// or timed out.
pub fn run_job_subprocess(row: usize, engine: &str, timeout: Duration) -> Option<Measurement> {
    use std::io::Read as _;
    use std::process::{Command, Stdio};
    let exe = std::env::current_exe().ok()?;
    let mut child = Command::new(exe)
        .args(["--job", &row.to_string(), engine])
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .ok()?;
    let start = std::time::Instant::now();
    loop {
        match child.try_wait().ok()? {
            Some(status) => {
                if !status.success() {
                    return None;
                }
                break;
            }
            None => {
                if start.elapsed() > timeout {
                    let _ = child.kill();
                    let _ = child.wait();
                    return None;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    let mut out = String::new();
    child.stdout.take()?.read_to_string(&mut out).ok()?;
    serde_json::from_str(out.trim()).ok()
}

/// Minimal JSON (de)serialization to avoid an extra dependency: the
/// measurement struct is flat, so `serde_json` is replaced by a tiny
/// hand-rolled codec.
pub mod serde_json {
    use super::Measurement;

    /// Serializes a measurement as one JSON object line.
    pub fn to_string(m: &Measurement) -> String {
        format!(
            "{{\"dep_s\":{},\"fix_s\":{},\"total_s\":{},\"mem_mb\":{},\"avg_defs\":{},\"avg_uses\":{},\"locs\":{},\"iterations\":{}}}",
            m.dep_s, m.fix_s, m.total_s, m.mem_mb, m.avg_defs, m.avg_uses, m.locs, m.iterations
        )
    }

    /// Parses what `to_string` produces.
    pub fn from_str(s: &str) -> Result<Measurement, String> {
        let mut m = Measurement::default();
        let body = s.trim().trim_start_matches('{').trim_end_matches('}');
        for field in body.split(',') {
            let mut kv = field.splitn(2, ':');
            let key = kv.next().ok_or("missing key")?.trim().trim_matches('"');
            let value = kv.next().ok_or("missing value")?.trim();
            match key {
                "dep_s" => m.dep_s = value.parse().map_err(|e| format!("{e}"))?,
                "fix_s" => m.fix_s = value.parse().map_err(|e| format!("{e}"))?,
                "total_s" => m.total_s = value.parse().map_err(|e| format!("{e}"))?,
                "mem_mb" => m.mem_mb = value.parse().map_err(|e| format!("{e}"))?,
                "avg_defs" => m.avg_defs = value.parse().map_err(|e| format!("{e}"))?,
                "avg_uses" => m.avg_uses = value.parse().map_err(|e| format!("{e}"))?,
                "locs" => m.locs = value.parse().map_err(|e| format!("{e}"))?,
                "iterations" => m.iterations = value.parse().map_err(|e| format!("{e}"))?,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Formats seconds like the paper's tables (integer seconds above 10).
pub fn fmt_s(secs: f64) -> String {
    if secs >= 10.0 {
        format!("{secs:.0}")
    } else if secs >= 0.01 {
        format!("{secs:.2}")
    } else {
        format!("{:.1}ms", secs * 1000.0)
    }
}

/// `x.y×` speedup formatting; `∞` markers for skipped engines.
pub fn fmt_speedup(slow: Option<f64>, fast: f64) -> String {
    match slow {
        Some(s) if fast > 0.0 => format!("{:.0}x", s / fast),
        _ => "N/A".to_string(),
    }
}

/// Memory-saving percentage, `Mem↓` columns.
pub fn fmt_memsave(before: Option<f64>, after: f64) -> String {
    match before {
        Some(b) if b > 0.0 => format!("{:.0}%", (1.0 - after / b) * 100.0),
        _ => "N/A".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_rows_mirror_the_paper() {
        let rows = table1_rows();
        assert_eq!(rows.len(), 16);
        assert_eq!(rows[0].name, "gzip-1.2.4a");
        assert_eq!(rows[15].name, "ghostscript-9.00");
        // LOC ordering follows the paper.
        assert!(rows[15].config.target_loc > rows[0].config.target_loc);
        // The vim row carries the biggest SCC.
        let vim = rows.iter().find(|r| r.name == "vim60").unwrap();
        let gzip = rows.iter().find(|r| r.name == "gzip-1.2.4a").unwrap();
        assert!(vim.config.max_scc > gzip.config.max_scc);
    }

    #[test]
    fn octagon_rows_are_smaller() {
        let t1 = table1_rows();
        let t3 = table3_rows();
        assert_eq!(t3.len(), 9);
        for (a, b) in t3.iter().zip(&t1) {
            assert!(a.config.target_loc <= b.config.target_loc);
        }
        assert!(t3[0].run_vanilla && !t3[8].run_vanilla);
    }

    #[test]
    fn measurement_json_roundtrip() {
        let m = Measurement {
            dep_s: 1.5,
            fix_s: 0.25,
            total_s: 2.0,
            mem_mb: 128.0,
            avg_defs: 2.4,
            avg_uses: 2.5,
            locs: 1784,
            iterations: 9001,
        };
        let s = serde_json::to_string(&m);
        let back = serde_json::from_str(&s).unwrap();
        assert_eq!(s, serde_json::to_string(&back));
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_s(90.4), "90");
        assert_eq!(fmt_s(1.234), "1.23");
        assert_eq!(fmt_speedup(Some(10.0), 2.0), "5x");
        assert_eq!(fmt_speedup(None, 2.0), "N/A");
        assert_eq!(fmt_memsave(Some(100.0), 25.0), "75%");
    }
}
