//! Abstract domains for the SGA analyses.
//!
//! The paper's baseline abstraction (§2.3) fixes abstract states to maps
//! `L̂ → V̂` from a finite set of abstract locations to abstract values. This
//! crate provides both instantiations used in the evaluation:
//!
//! * the **non-relational** instance (§3): [`Value`] is a
//!   product of an interval ([`interval`]), a points-to set ([`locs`]), an
//!   array block ([`array`](mod@array)) and a function-pointer set, with
//!   [`State`] the location-indexed map;
//! * the **relational** instance (§4): packed [`octagon`]s, where the
//!   abstract locations are variable [`pack`]s and the values are octagon
//!   constraints.
//!
//! All domains implement the [`Lattice`] trait consumed by
//! the fixpoint engines in `sga-core`.

pub mod array;
pub mod interval;
pub mod lattice;
pub mod locs;
pub mod octagon;
pub mod pack;
pub mod state;
pub mod value;

pub use interval::Interval;
pub use lattice::{Lattice, Thresholds};
pub use locs::{AbsLoc, LocSet};
pub use octagon::Octagon;
pub use pack::{Pack, PackId, PackSet};
pub use state::State;
pub use value::Value;
