//! Array blocks: the paper's abstraction of arrays (§6.1).
//!
//! "The analysis abstracts an array by a set of tuples of base address,
//! offset, and size" — an [`ArrayBlk`] maps each base allocation site (or
//! fixed-size global buffer) to the interval of offsets a pointer may have
//! into it and the interval of the block's size. Pointer arithmetic shifts
//! offsets; dereferencing reads the base's summarized contents; the
//! buffer-overrun checker compares offset against size.

use crate::interval::Interval;
use crate::lattice::{Lattice, Thresholds};
use crate::locs::AbsLoc;
use std::fmt;
// `Arc`, not `Rc`: values travel across the pipeline's worker threads
// inside shared abstract states, so the sharing pointer must be thread-safe.
use std::sync::Arc;

type Rc<T> = Arc<T>;

/// Offset/size information for one array base.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct ArrInfo {
    /// Possible byte/element offsets of the pointer into the block.
    pub offset: Interval,
    /// Possible sizes of the block.
    pub size: Interval,
}

impl ArrInfo {
    /// Fresh pointer to the start of a block of `size` elements.
    pub fn fresh(size: Interval) -> ArrInfo {
        ArrInfo {
            offset: Interval::constant(0),
            size,
        }
    }
}

impl Lattice for ArrInfo {
    fn bottom() -> Self {
        ArrInfo {
            offset: Interval::Bot,
            size: Interval::Bot,
        }
    }
    fn le(&self, other: &Self) -> bool {
        self.offset.le(&other.offset) && self.size.le(&other.size)
    }
    fn join(&self, other: &Self) -> Self {
        ArrInfo {
            offset: self.offset.join(&other.offset),
            size: self.size.join(&other.size),
        }
    }
    fn widen(&self, other: &Self) -> Self {
        ArrInfo {
            offset: self.offset.widen(&other.offset),
            size: self.size.widen(&other.size),
        }
    }
    fn widen_with(&self, other: &Self, thresholds: &Thresholds) -> Self {
        ArrInfo {
            offset: self.offset.widen_with(&other.offset, thresholds),
            size: self.size.widen_with(&other.size, thresholds),
        }
    }
    fn narrow(&self, other: &Self) -> Self {
        ArrInfo {
            offset: self.offset.narrow(&other.offset),
            size: self.size.narrow(&other.size),
        }
    }
}

/// A set of `(base, offset, size)` tuples, sorted by base.
#[derive(Clone, PartialEq, Eq)]
pub struct ArrayBlk(Rc<[(AbsLoc, ArrInfo)]>);

impl ArrayBlk {
    /// The empty block set (no array value).
    pub fn empty() -> ArrayBlk {
        ArrayBlk(Rc::from([]))
    }

    /// A single fresh block at `base` with `size` elements.
    pub fn alloc(base: AbsLoc, size: Interval) -> ArrayBlk {
        ArrayBlk(Rc::from([(base, ArrInfo::fresh(size))]))
    }

    /// Whether no blocks are present.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Number of bases.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Iterates over `(base, info)` pairs.
    pub fn iter(&self) -> std::slice::Iter<'_, (AbsLoc, ArrInfo)> {
        self.0.iter()
    }

    /// Info for one base.
    pub fn get(&self, base: &AbsLoc) -> Option<&ArrInfo> {
        self.0
            .binary_search_by(|(b, _)| b.cmp(base))
            .ok()
            .map(|i| &self.0[i].1)
    }

    /// The base locations a dereference of this pointer-to-array reaches.
    pub fn bases(&self) -> impl Iterator<Item = AbsLoc> + '_ {
        self.0.iter().map(|(b, _)| *b)
    }

    /// Pointer arithmetic: shifts every offset by `delta` (`p + i`).
    #[must_use]
    pub fn shift(&self, delta: &Interval) -> ArrayBlk {
        if self.0.is_empty() || delta.as_const() == Some(0) {
            return self.clone();
        }
        ArrayBlk(
            self.0
                .iter()
                .map(|(b, info)| {
                    (
                        *b,
                        ArrInfo {
                            offset: info.offset.add(delta),
                            size: info.size,
                        },
                    )
                })
                .collect::<Vec<_>>()
                .into(),
        )
    }

    fn merge_with(&self, other: &ArrayBlk, f: impl Fn(&ArrInfo, &ArrInfo) -> ArrInfo) -> ArrayBlk {
        if self.0.is_empty() {
            return other.clone();
        }
        if other.0.is_empty() || Rc::ptr_eq(&self.0, &other.0) {
            return self.clone();
        }
        let mut out: Vec<(AbsLoc, ArrInfo)> = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].0.cmp(&other.0[j].0) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push((self.0[i].0, f(&self.0[i].1, &other.0[j].1)));
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        ArrayBlk(out.into())
    }
}

impl Lattice for ArrayBlk {
    fn bottom() -> Self {
        ArrayBlk::empty()
    }

    fn le(&self, other: &Self) -> bool {
        if Rc::ptr_eq(&self.0, &other.0) {
            return true;
        }
        self.0
            .iter()
            .all(|(b, info)| other.get(b).is_some_and(|o| info.le(o)))
    }

    fn join(&self, other: &Self) -> Self {
        self.merge_with(other, |a, b| a.join(b))
    }

    fn widen(&self, other: &Self) -> Self {
        self.merge_with(other, |a, b| a.widen(b))
    }

    fn widen_with(&self, other: &Self, thresholds: &Thresholds) -> Self {
        self.merge_with(other, |a, b| a.widen_with(b, thresholds))
    }

    fn narrow(&self, other: &Self) -> Self {
        // Narrowing only refines infinite bounds of entries present in both;
        // bases are kept (they were sound in `self`).
        if Rc::ptr_eq(&self.0, &other.0) {
            return self.clone();
        }
        ArrayBlk(
            self.0
                .iter()
                .map(|(b, info)| match other.get(b) {
                    Some(o) => (*b, info.narrow(o)),
                    None => (*b, *info),
                })
                .collect::<Vec<_>>()
                .into(),
        )
    }
}

impl FromIterator<(AbsLoc, ArrInfo)> for ArrayBlk {
    fn from_iter<I: IntoIterator<Item = (AbsLoc, ArrInfo)>>(iter: I) -> Self {
        let mut v: Vec<(AbsLoc, ArrInfo)> = iter.into_iter().collect();
        v.sort_unstable_by_key(|a| a.0);
        v.dedup_by(|a, b| {
            if a.0 == b.0 {
                b.1 = b.1.join(&a.1);
                true
            } else {
                false
            }
        });
        ArrayBlk(v.into())
    }
}

impl fmt::Debug for ArrayBlk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut set = f.debug_set();
        for (b, info) in self.iter() {
            set.entry(&format_args!(
                "⟨{b:?}, off {}, sz {}⟩",
                info.offset, info.size
            ));
        }
        set.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::laws;
    use sga_ir::{Cp, NodeId, ProcId, VarId};
    use sga_utils::Idx;

    fn site(n: usize) -> AbsLoc {
        AbsLoc::Alloc(crate::locs::AllocSite(Cp::new(
            ProcId::new(0),
            NodeId::new(n),
        )))
    }

    #[test]
    fn alloc_and_shift() {
        let blk = ArrayBlk::alloc(site(1), Interval::constant(10));
        let shifted = blk.shift(&Interval::range(2, 3));
        let info = shifted.get(&site(1)).unwrap();
        assert_eq!(info.offset, Interval::range(2, 3));
        assert_eq!(info.size, Interval::constant(10));
        // Shift by zero shares.
        assert!(blk.shift(&Interval::constant(0)) == blk);
    }

    #[test]
    fn join_merges_bases() {
        let a = ArrayBlk::alloc(site(1), Interval::constant(10));
        let b = ArrayBlk::alloc(site(2), Interval::constant(20));
        let j = a.join(&b);
        assert_eq!(j.len(), 2);
        assert!(j.get(&site(1)).is_some() && j.get(&site(2)).is_some());
    }

    #[test]
    fn join_same_base_joins_info() {
        let a = ArrayBlk::alloc(site(1), Interval::constant(10));
        let b = ArrayBlk::alloc(site(1), Interval::constant(20)).shift(&Interval::constant(5));
        let j = a.join(&b);
        let info = j.get(&site(1)).unwrap();
        assert_eq!(info.offset, Interval::range(0, 5));
        assert_eq!(info.size, Interval::range(10, 20));
    }

    #[test]
    fn le_requires_base_coverage() {
        let a = ArrayBlk::alloc(site(1), Interval::constant(10));
        let b = a.join(&ArrayBlk::alloc(site(2), Interval::constant(5)));
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(ArrayBlk::empty().le(&a));
    }

    #[test]
    fn lattice_laws_on_samples() {
        let var = AbsLoc::Var(VarId::new(0));
        let samples = [
            ArrayBlk::empty(),
            ArrayBlk::alloc(site(1), Interval::constant(10)),
            ArrayBlk::alloc(site(2), Interval::range(5, 9)),
            ArrayBlk::alloc(var, Interval::top()).shift(&Interval::range(-1, 1)),
        ];
        for a in &samples {
            for b in &samples {
                for c in &samples {
                    laws::check_join_laws(a, b, c);
                    laws::check_widen_narrow_laws(a, b);
                }
            }
        }
    }
}
