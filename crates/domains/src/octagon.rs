//! The octagon abstract domain (Miné, HOSC 2006) — the representative
//! relational domain of the paper's evaluation (`Octagon*` analyzers, §6.2).
//!
//! An octagon over `k` variables tracks constraints of the form
//! `±x_i ± x_j ≤ c`. The implementation is the classic difference-bound
//! matrix (DBM) over `2k` signed forms: index `2i` is `+x_i`, index `2i+1`
//! is `-x_i`, and entry `m[a][b]` bounds `V_b − V_a ≤ m[a][b]`. Strong
//! closure (Floyd–Warshall plus the unary-constraint strengthening step) is
//! the normal form used by `le`, `join`, and projection; widening operates
//! on the *unclosed* left argument, as required for termination.
//!
//! # Examples
//!
//! ```
//! use sga_domains::{Octagon, Interval};
//!
//! // x0 ∈ [0, 10], x1 = x0 + 2  ⇒  x1 ∈ [2, 12]
//! let oct = Octagon::top(2)
//!     .assign_interval(0, &Interval::range(0, 10))
//!     .assign_var_plus(1, 0, 2);
//! assert_eq!(oct.project(1), Interval::range(2, 12));
//! ```

use crate::interval::{Bound, Interval};
use crate::lattice::{Lattice, Thresholds};
use sga_ir::RelOp;
use std::fmt;
use std::rc::Rc;

/// Entry value for "no constraint".
const INF: i64 = i64::MAX / 4;

#[inline]
fn badd(a: i64, b: i64) -> i64 {
    if a >= INF || b >= INF {
        INF
    } else {
        (a + b).min(INF)
    }
}

#[inline]
fn pos(i: usize) -> usize {
    2 * i
}

#[inline]
fn neg(i: usize) -> usize {
    2 * i + 1
}

/// Flips the sign of a DBM index (`+x ↔ -x`).
#[inline]
fn bar(a: usize) -> usize {
    a ^ 1
}

/// An octagon over a fixed number of variables.
///
/// The dimensionless [`Lattice::bottom`] unifies with any dimension, so the
/// packed relational state can use a single `Lattice` instance.
#[derive(Clone)]
pub enum Octagon {
    /// Unsatisfiable constraints (⊥), any dimension.
    Bot,
    /// A satisfiable constraint matrix.
    Oct(Matrix),
}

/// The DBM payload of a non-⊥ octagon.
#[derive(Clone)]
pub struct Matrix {
    dim: usize,
    /// Row-major `2dim × 2dim` bound matrix.
    m: Rc<[i64]>,
    closed: bool,
}

impl Matrix {
    #[inline]
    fn n(&self) -> usize {
        2 * self.dim
    }

    #[inline]
    fn at(&self, a: usize, b: usize) -> i64 {
        self.m[a * self.n() + b]
    }
}

impl Octagon {
    /// The unconstrained octagon over `dim` variables.
    pub fn top(dim: usize) -> Octagon {
        let n = 2 * dim;
        let mut m = vec![INF; n * n];
        for a in 0..n {
            m[a * n + a] = 0;
        }
        Octagon::Oct(Matrix {
            dim,
            m: m.into(),
            closed: true,
        })
    }

    /// Number of variables, `None` for the dimensionless ⊥.
    pub fn dim(&self) -> Option<usize> {
        match self {
            Octagon::Bot => None,
            Octagon::Oct(mat) => Some(mat.dim),
        }
    }

    fn with_matrix(dim: usize, m: Vec<i64>, closed: bool) -> Octagon {
        Octagon::Oct(Matrix {
            dim,
            m: m.into(),
            closed,
        })
    }

    /// Strong closure: shortest paths plus the strengthening step
    /// `m[a][b] ← min(m[a][b], (m[a][ā] + m[b̄][b]) / 2)`. Detects ⊥ via a
    /// negative diagonal. Returns a closed octagon (or ⊥).
    #[must_use]
    pub fn close(&self) -> Octagon {
        let Octagon::Oct(mat) = self else {
            return Octagon::Bot;
        };
        if mat.closed {
            return self.clone();
        }
        let n = mat.n();
        let mut m: Vec<i64> = mat.m.to_vec();
        // Floyd–Warshall.
        for k in 0..n {
            for a in 0..n {
                let mak = m[a * n + k];
                if mak >= INF {
                    continue;
                }
                for b in 0..n {
                    let cand = badd(mak, m[k * n + b]);
                    if cand < m[a * n + b] {
                        m[a * n + b] = cand;
                    }
                }
            }
            // Strengthening interleaved keeps strong closure exact.
            for a in 0..n {
                let ua = m[a * n + bar(a)];
                if ua >= INF {
                    continue;
                }
                for b in 0..n {
                    let ub = m[bar(b) * n + b];
                    if ub >= INF {
                        continue;
                    }
                    let cand = (ua >> 1) + (ub >> 1) + (ua & ub & 1);
                    if cand < m[a * n + b] {
                        m[a * n + b] = cand;
                    }
                }
            }
        }
        for a in 0..n {
            if m[a * n + a] < 0 {
                return Octagon::Bot;
            }
            m[a * n + a] = 0;
        }
        Octagon::with_matrix(mat.dim, m, true)
    }

    /// Adds the constraint `V_b − V_a ≤ c` in raw DBM coordinates (and its
    /// coherent mirror), without closing.
    #[must_use]
    fn add_raw(&self, a: usize, b: usize, c: i64) -> Octagon {
        let Octagon::Oct(mat) = self else {
            return Octagon::Bot;
        };
        let n = mat.n();
        let mut m = mat.m.to_vec();
        if c < m[a * n + b] {
            m[a * n + b] = c;
            m[bar(b) * n + bar(a)] = c;
        }
        Octagon::with_matrix(mat.dim, m, false)
    }

    /// Adds `x_j − x_i ≤ c`.
    #[must_use]
    pub fn add_diff(&self, j: usize, i: usize, c: i64) -> Octagon {
        self.add_raw(pos(i), pos(j), c).close()
    }

    /// Adds `x_j + x_i ≤ c`.
    #[must_use]
    pub fn add_sum_le(&self, j: usize, i: usize, c: i64) -> Octagon {
        self.add_raw(neg(i), pos(j), c).close()
    }

    /// Adds `−x_j − x_i ≤ c`.
    #[must_use]
    pub fn add_neg_sum_le(&self, j: usize, i: usize, c: i64) -> Octagon {
        self.add_raw(pos(i), neg(j), c).close()
    }

    /// Adds `x_i ≤ c`.
    #[must_use]
    pub fn add_upper(&self, i: usize, c: i64) -> Octagon {
        self.add_raw(neg(i), pos(i), c.saturating_mul(2).min(INF))
            .close()
    }

    /// Adds `x_i ≥ c`.
    #[must_use]
    pub fn add_lower(&self, i: usize, c: i64) -> Octagon {
        self.add_raw(pos(i), neg(i), (-c).saturating_mul(2).min(INF))
            .close()
    }

    /// Removes every constraint on `x_i` (Miné's *forget*), closing first so
    /// relations through `x_i` are preserved.
    #[must_use]
    pub fn forget(&self, i: usize) -> Octagon {
        let closed = self.close();
        let Octagon::Oct(mat) = &closed else {
            return Octagon::Bot;
        };
        let n = mat.n();
        let mut m = mat.m.to_vec();
        for a in [pos(i), neg(i)] {
            for b in 0..n {
                if a != b {
                    m[a * n + b] = INF;
                    m[b * n + a] = INF;
                }
            }
        }
        Octagon::with_matrix(mat.dim, m, true)
    }

    /// `x_i := [lo, hi]` — forget then bound.
    #[must_use]
    pub fn assign_interval(&self, i: usize, itv: &Interval) -> Octagon {
        match itv {
            Interval::Bot => Octagon::Bot,
            Interval::Range(lo, hi) => {
                let mut oct = self.forget(i);
                if let Bound::Int(h) = hi {
                    oct = oct.add_upper(i, *h);
                }
                if let Bound::Int(l) = lo {
                    oct = oct.add_lower(i, *l);
                }
                oct
            }
        }
    }

    /// `x_i := x_j + c` (exact octagonal assignment).
    #[must_use]
    pub fn assign_var_plus(&self, i: usize, j: usize, c: i64) -> Octagon {
        if i == j {
            // x := x + c — shift every bound mentioning x by ±c.
            let closed = self.close();
            let Octagon::Oct(mat) = &closed else {
                return Octagon::Bot;
            };
            let n = mat.n();
            let mut m = mat.m.to_vec();
            let (p, q) = (pos(i), neg(i));
            for a in 0..n {
                for b in 0..n {
                    if a == b {
                        continue;
                    }
                    let mut delta = 0i64;
                    // Entry bounds V_b − V_a; +x contributes +c to V,
                    // −x contributes −c.
                    if b == p {
                        delta -= c;
                    }
                    if b == q {
                        delta += c;
                    }
                    if a == p {
                        delta += c;
                    }
                    if a == q {
                        delta -= c;
                    }
                    let v = m[a * n + b];
                    if v < INF {
                        m[a * n + b] = v.saturating_sub(delta).min(INF);
                    }
                }
            }
            Octagon::with_matrix(mat.dim, m, true)
        } else {
            // x := y + c: forget x, then x − y ≤ c and y − x ≤ −c.
            self.forget(i)
                .add_raw(pos(j), pos(i), c)
                .add_raw(pos(i), pos(j), -c)
                .close()
        }
    }

    /// Tests/refines with `x_i ⋈ x_j + c` (assume transfer function).
    #[must_use]
    pub fn assume_var(&self, i: usize, op: RelOp, j: usize, c: i64) -> Octagon {
        match op {
            RelOp::Le => self.add_diff(i, j, c),
            RelOp::Lt => self.add_diff(i, j, c - 1),
            RelOp::Ge => self.add_diff(j, i, -c),
            RelOp::Gt => self.add_diff(j, i, -c - 1),
            RelOp::Eq => self.add_diff(i, j, c).add_diff(j, i, -c),
            RelOp::Ne => self.clone(), // octagons cannot express ≠
        }
    }

    /// Tests/refines with `x_i ⋈ c`.
    #[must_use]
    pub fn assume_const(&self, i: usize, op: RelOp, c: i64) -> Octagon {
        match op {
            RelOp::Le => self.add_upper(i, c),
            RelOp::Lt => self.add_upper(i, c - 1),
            RelOp::Ge => self.add_lower(i, c),
            RelOp::Gt => self.add_lower(i, c + 1),
            RelOp::Eq => self.add_upper(i, c).add_lower(i, c),
            RelOp::Ne => self.clone(),
        }
    }

    /// Projects variable `x_i` to an interval — `π_x` of §4.2, the bridge
    /// from the relational domain back to non-relational values.
    pub fn project(&self, i: usize) -> Interval {
        let closed = self.close();
        let Octagon::Oct(mat) = &closed else {
            return Interval::Bot;
        };
        let up = mat.at(neg(i), pos(i)); // 2·x ≤ up
        let dn = mat.at(pos(i), neg(i)); // −2·x ≤ dn
        let hi = if up >= INF {
            Bound::PosInf
        } else {
            Bound::Int(up.div_euclid(2))
        };
        let lo = if dn >= INF {
            Bound::NegInf
        } else {
            Bound::Int((-dn).div_euclid(2) + i64::from((-dn).rem_euclid(2) != 0))
        };
        Interval::new(lo, hi)
    }

    /// The tightest known bound on `x_i − x_j`, if any.
    pub fn diff_bound(&self, i: usize, j: usize) -> Option<i64> {
        let closed = self.close();
        let Octagon::Oct(mat) = &closed else {
            return None;
        };
        let c = mat.at(pos(j), pos(i));
        (c < INF).then_some(c)
    }

    /// The interval of `x_i − x_j` implied by the constraints.
    pub fn diff_interval(&self, i: usize, j: usize) -> Interval {
        let closed = self.close();
        let Octagon::Oct(_) = &closed else {
            return Interval::Bot;
        };
        let hi = match closed.diff_bound(i, j) {
            Some(c) => Bound::Int(c),
            None => Bound::PosInf,
        };
        let lo = match closed.diff_bound(j, i) {
            Some(c) => Bound::Int(-c),
            None => Bound::NegInf,
        };
        Interval::new(lo, hi)
    }

    /// The interval of `x_i + x_j` implied by the constraints.
    pub fn sum_interval(&self, i: usize, j: usize) -> Interval {
        let closed = self.close();
        let Octagon::Oct(mat) = &closed else {
            return Interval::Bot;
        };
        // x_i + x_j ≤ c is entry m[i⁻][j⁺]; −x_i − x_j ≤ c is m[i⁺][j⁻].
        let up = mat.at(neg(i), pos(j));
        let dn = mat.at(pos(i), neg(j));
        let hi = if up >= INF {
            Bound::PosInf
        } else {
            Bound::Int(up)
        };
        let lo = if dn >= INF {
            Bound::NegInf
        } else {
            Bound::Int(-dn)
        };
        Interval::new(lo, hi)
    }

    fn binary_pointwise(&self, other: &Self, f: impl Fn(i64, i64) -> i64, closed: bool) -> Octagon {
        match (self.close(), other.close()) {
            (Octagon::Bot, o) | (o, Octagon::Bot) => o,
            (Octagon::Oct(a), Octagon::Oct(b)) => {
                assert_eq!(a.dim, b.dim, "octagon dimension mismatch");
                let m: Vec<i64> = a.m.iter().zip(b.m.iter()).map(|(&x, &y)| f(x, y)).collect();
                Octagon::with_matrix(a.dim, m, closed)
            }
        }
    }

    /// Greatest lower bound.
    #[must_use]
    pub fn meet(&self, other: &Self) -> Octagon {
        match (self, other) {
            (Octagon::Bot, _) | (_, Octagon::Bot) => Octagon::Bot,
            _ => self.binary_pointwise(other, i64::min, false).close(),
        }
    }
}

impl Lattice for Octagon {
    fn bottom() -> Self {
        Octagon::Bot
    }

    fn is_bottom(&self) -> bool {
        matches!(self.close(), Octagon::Bot)
    }

    fn le(&self, other: &Self) -> bool {
        match (self.close(), other) {
            (Octagon::Bot, _) => true,
            (_, Octagon::Bot) => other.close().is_bottom() && self.is_bottom(),
            (Octagon::Oct(a), Octagon::Oct(_)) => {
                // Compare against the raw right side is unsound; close it.
                let Octagon::Oct(b) = other.close() else {
                    return false;
                };
                assert_eq!(a.dim, b.dim, "octagon dimension mismatch");
                a.m.iter().zip(b.m.iter()).all(|(&x, &y)| x <= y)
            }
        }
    }

    fn join(&self, other: &Self) -> Self {
        // Pointwise max of *closed* arguments is the octagon lub.
        self.binary_pointwise(other, i64::max, true)
    }

    fn widen(&self, other: &Self) -> Self {
        // Standard DBM widening: keep stable bounds, drop growing ones.
        // The left argument must stay unclosed between widening steps.
        match (self, other.close()) {
            (Octagon::Bot, o) => o,
            (s, Octagon::Bot) => s.clone(),
            (Octagon::Oct(a), Octagon::Oct(b)) => {
                assert_eq!(a.dim, b.dim, "octagon dimension mismatch");
                let m: Vec<i64> =
                    a.m.iter()
                        .zip(b.m.iter())
                        .map(|(&x, &y)| if y <= x { x } else { INF })
                        .collect();
                Octagon::with_matrix(a.dim, m, false)
            }
        }
    }

    fn widen_with(&self, other: &Self, thresholds: &Thresholds) -> Self {
        // Threshold DBM widening: a growing entry is clamped to the smallest
        // scaled-threshold candidate that still covers it, instead of going
        // straight to "no constraint". Unary rows store `2x ≤ c`, so the
        // candidate set holds both the harvested values and their doubles.
        // The left argument stays unclosed, exactly as in `widen`.
        match (self, other.close()) {
            (Octagon::Bot, o) => o,
            (s, Octagon::Bot) => s.clone(),
            (Octagon::Oct(a), Octagon::Oct(b)) => {
                assert_eq!(a.dim, b.dim, "octagon dimension mismatch");
                let m: Vec<i64> =
                    a.m.iter()
                        .zip(b.m.iter())
                        .map(|(&x, &y)| {
                            if y <= x {
                                x
                            } else {
                                match thresholds.clamp_dbm(y) {
                                    Some(t) if t < INF => t,
                                    _ => INF,
                                }
                            }
                        })
                        .collect();
                Octagon::with_matrix(a.dim, m, false)
            }
        }
    }

    fn narrow(&self, other: &Self) -> Self {
        match (self.close(), other.close()) {
            (Octagon::Bot, _) | (_, Octagon::Bot) => Octagon::Bot,
            (Octagon::Oct(a), Octagon::Oct(b)) => {
                assert_eq!(a.dim, b.dim, "octagon dimension mismatch");
                // Refine only the unconstrained (INF) entries.
                let m: Vec<i64> =
                    a.m.iter()
                        .zip(b.m.iter())
                        .map(|(&x, &y)| if x >= INF { y } else { x })
                        .collect();
                Octagon::with_matrix(a.dim, m, false).close()
            }
        }
    }
}

impl PartialEq for Octagon {
    fn eq(&self, other: &Self) -> bool {
        match (self.close(), other.close()) {
            (Octagon::Bot, Octagon::Bot) => true,
            (Octagon::Oct(a), Octagon::Oct(b)) => a.dim == b.dim && a.m == b.m,
            _ => false,
        }
    }
}

impl fmt::Debug for Octagon {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.close() {
            Octagon::Bot => write!(f, "⊥oct"),
            Octagon::Oct(mat) => {
                write!(f, "oct{{")?;
                let mut first = true;
                for i in 0..mat.dim {
                    let itv = self.project(i);
                    if itv != Interval::top() {
                        if !first {
                            write!(f, ", ")?;
                        }
                        write!(f, "x{i}∈{itv}")?;
                        first = false;
                    }
                    for j in 0..mat.dim {
                        if i != j {
                            let c = mat.at(pos(j), pos(i));
                            if c < INF {
                                if !first {
                                    write!(f, ", ")?;
                                }
                                write!(f, "x{i}-x{j}≤{c}")?;
                                first = false;
                            }
                        }
                    }
                }
                write!(f, "}}")
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::laws;
    use proptest::prelude::*;

    #[test]
    fn top_projects_to_top() {
        let o = Octagon::top(2);
        assert_eq!(o.project(0), Interval::top());
        assert!(!o.is_bottom());
    }

    #[test]
    fn interval_assignment_roundtrips() {
        let o = Octagon::top(3).assign_interval(1, &Interval::range(-4, 7));
        assert_eq!(o.project(1), Interval::range(-4, 7));
        assert_eq!(o.project(0), Interval::top());
    }

    #[test]
    fn relational_propagation() {
        // x0 ∈ [0,10]; x1 := x0 + 2; assume x0 ≥ 5 ⇒ x1 ≥ 7.
        let o = Octagon::top(2)
            .assign_interval(0, &Interval::range(0, 10))
            .assign_var_plus(1, 0, 2)
            .assume_const(0, RelOp::Ge, 5);
        assert_eq!(o.project(1), Interval::range(7, 12));
        assert_eq!(o.diff_bound(1, 0), Some(2));
        assert_eq!(o.diff_bound(0, 1), Some(-2));
    }

    #[test]
    fn contradiction_is_bottom() {
        let o = Octagon::top(1)
            .assume_const(0, RelOp::Ge, 5)
            .assume_const(0, RelOp::Lt, 5);
        assert!(o.is_bottom());
    }

    #[test]
    fn self_increment_shifts_bounds() {
        let o = Octagon::top(2)
            .assign_interval(0, &Interval::range(0, 3))
            .assign_var_plus(1, 0, 0) // x1 = x0
            .assign_var_plus(0, 0, 1); // x0 += 1
        assert_eq!(o.project(0), Interval::range(1, 4));
        // relation updated: x0 − x1 = 1.
        assert_eq!(o.diff_bound(0, 1), Some(1));
    }

    #[test]
    fn forget_drops_var_keeps_others() {
        let o = Octagon::top(2)
            .assign_interval(0, &Interval::range(1, 2))
            .assign_interval(1, &Interval::range(3, 4))
            .forget(0);
        assert_eq!(o.project(0), Interval::top());
        assert_eq!(o.project(1), Interval::range(3, 4));
    }

    #[test]
    fn forget_preserves_transitive_relations() {
        // x0 = x1, x1 = x2; forgetting x1 must keep x0 = x2.
        let o = Octagon::top(3)
            .assign_var_plus(0, 1, 0)
            .add_diff(1, 2, 0)
            .add_diff(2, 1, 0)
            .forget(1);
        assert_eq!(o.diff_bound(0, 2), Some(0));
        assert_eq!(o.diff_bound(2, 0), Some(0));
    }

    #[test]
    fn join_loses_precision_soundly() {
        let a = Octagon::top(1).assign_interval(0, &Interval::range(0, 1));
        let b = Octagon::top(1).assign_interval(0, &Interval::range(5, 6));
        let j = a.join(&b);
        assert_eq!(j.project(0), Interval::range(0, 6));
        assert!(a.le(&j) && b.le(&j));
    }

    #[test]
    fn meet_refines() {
        let a = Octagon::top(1).assign_interval(0, &Interval::range(0, 10));
        let b = Octagon::top(1).assign_interval(0, &Interval::range(5, 20));
        assert_eq!(a.meet(&b).project(0), Interval::range(5, 10));
    }

    #[test]
    fn widening_stabilizes_loop_counter() {
        // Simulates i := 0; while (i < 100) i := i + 1 at the loop head.
        let mut head = Octagon::top(1).assign_interval(0, &Interval::constant(0));
        for _ in 0..5 {
            let body = head
                .assume_const(0, RelOp::Lt, 100)
                .assign_var_plus(0, 0, 1);
            let init = Octagon::top(1).assign_interval(0, &Interval::constant(0));
            let next = head.widen(&init.join(&body));
            if next == head {
                break;
            }
            head = next;
        }
        // After widening: i ≥ 0 with unbounded top.
        assert_eq!(head.project(0).lo(), Some(Bound::Int(0)));
        assert_eq!(head.project(0).hi(), Some(Bound::PosInf));
        // Narrowing recovers the exit bound ≤ 100.
        let body = head
            .assume_const(0, RelOp::Lt, 100)
            .assign_var_plus(0, 0, 1);
        let init = Octagon::top(1).assign_interval(0, &Interval::constant(0));
        let narrowed = head.narrow(&init.join(&body));
        assert_eq!(narrowed.project(0), Interval::range(0, 100));
    }

    #[test]
    fn threshold_widening_lands_on_guard_constant() {
        // i := 0; while (i < 100) i++ — with 100 harvested, the widened
        // head stabilizes at i ≤ 100 without needing narrowing.
        let th = Thresholds::new(vec![100]);
        let mut head = Octagon::top(1).assign_interval(0, &Interval::constant(0));
        for _ in 0..8 {
            let body = head
                .assume_const(0, RelOp::Lt, 100)
                .assign_var_plus(0, 0, 1);
            let init = Octagon::top(1).assign_interval(0, &Interval::constant(0));
            let next = head.widen_with(&init.join(&body), &th);
            if next == head {
                break;
            }
            head = next;
        }
        assert_eq!(head.project(0), Interval::range(0, 100));
    }

    #[test]
    fn widen_with_empty_thresholds_is_widen() {
        let a = Octagon::top(2).assign_interval(0, &Interval::range(0, 1));
        let b = Octagon::top(2).assign_interval(0, &Interval::range(0, 2));
        assert_eq!(a.widen_with(&b, &Thresholds::none()), a.widen(&b));
    }

    #[test]
    fn widen_with_over_approximates_join() {
        let th = Thresholds::new(vec![0, 10]);
        let a = Octagon::top(1).assign_interval(0, &Interval::range(0, 3));
        let b = Octagon::top(1).assign_interval(0, &Interval::range(0, 5));
        let j = a.join(&b);
        let w = a.widen_with(&b, &th);
        assert!(j.le(&w));
        // Unary rows store 2x ≤ c, so the growing entry 2·5 = 10 clamps to
        // the candidate 10 ⇒ x ≤ 5, and a later jump past it lands on the
        // doubled candidate 20 ⇒ x ≤ 10.
        assert_eq!(w.project(0), Interval::range(0, 5));
        let c = Octagon::top(1).assign_interval(0, &Interval::range(0, 7));
        assert_eq!(w.widen_with(&c, &th).project(0), Interval::range(0, 10));
    }

    #[test]
    fn diff_and_sum_intervals() {
        let o = Octagon::top(2)
            .assign_interval(0, &Interval::range(1, 3))
            .assign_interval(1, &Interval::range(10, 20));
        // x0 − x1 ∈ [1−20, 3−10] = [−19, −7]; x0 + x1 ∈ [11, 23].
        assert_eq!(o.diff_interval(0, 1), Interval::range(-19, -7));
        assert_eq!(o.diff_interval(1, 0), Interval::range(7, 19));
        assert_eq!(o.sum_interval(0, 1), Interval::range(11, 23));
        // Adding a tighter relation narrows the diff.
        let o2 = o.assume_var(1, RelOp::Eq, 0, 9); // x1 = x0 + 9
        assert_eq!(o2.diff_interval(1, 0), Interval::constant(9));
    }

    #[test]
    fn diff_interval_on_bot_is_bot() {
        assert_eq!(Octagon::Bot.diff_interval(0, 1), Interval::Bot);
        assert_eq!(Octagon::Bot.sum_interval(0, 1), Interval::Bot);
    }

    #[test]
    fn odd_sum_strengthening_rounds_down() {
        // x ≤ 1 and x ≥ 0 and x0+x1 ≤ 1 with x1 ≥ 1 forces x0 ≤ 0.
        let o = Octagon::top(2)
            .assign_interval(0, &Interval::range(0, 1))
            .add_sum_le(0, 1, 1)
            .add_lower(1, 1);
        assert_eq!(o.project(0), Interval::range(0, 0));
    }

    fn arb_oct() -> impl Strategy<Value = Octagon> {
        let built = prop::collection::vec((-20i64..20, 0i64..10), 2).prop_flat_map(|bounds| {
            prop::collection::vec(-15i64..15, 0..3).prop_map(move |diffs| {
                let mut o = Octagon::top(2);
                for (i, (lo, w)) in bounds.iter().enumerate() {
                    o = o.assign_interval(i, &Interval::range(*lo, lo + w));
                }
                for (idx, &c) in diffs.iter().enumerate() {
                    o = o.add_diff(idx % 2, (idx + 1) % 2, c);
                }
                o
            })
        });
        prop_oneof![built, Just(Octagon::Bot)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn lattice_laws(a in arb_oct(), b in arb_oct(), c in arb_oct()) {
            laws::check_join_laws(&a.close(), &b.close(), &c.close());
            laws::check_widen_narrow_laws(&a, &b);
        }

        #[test]
        fn projection_sound_on_concrete_points(
            x in -10i64..10, y in -10i64..10, c in -25i64..25,
        ) {
            // Build an octagon that must contain the concrete point (x, y).
            let o = Octagon::top(2)
                .assign_interval(0, &Interval::range(x.min(0), x.max(0)))
                .assign_interval(1, &Interval::range(y.min(0), y.max(0)));
            let o = if x - y <= c { o.add_diff(0, 1, c) } else { o };
            prop_assert!(o.project(0).contains(x));
            prop_assert!(o.project(1).contains(y));
        }
    }
}
