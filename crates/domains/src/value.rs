//! The abstract value `V̂ = Ẑ × P̂ × ArrayBlk × 2^Proc` (§3.1 + §6.1).
//!
//! A value carries, simultaneously, everything a C scalar might be: an
//! integer abstraction (interval), a points-to set, an array block (base,
//! offset, size tuples), and a set of function-pointer targets. Most values
//! populate only one component; the product keeps the transfer functions
//! uniform.

use crate::array::ArrayBlk;
use crate::interval::Interval;
use crate::lattice::{Lattice, Thresholds};
use crate::locs::LocSet;
use std::fmt;

/// An abstract value.
#[derive(Clone, PartialEq)]
pub struct Value {
    /// Numeric component `Ẑ`.
    pub itv: Interval,
    /// Points-to component `P̂` (non-array pointers).
    pub ptr: LocSet,
    /// Array-pointer component.
    pub arr: ArrayBlk,
    /// Function-pointer targets.
    pub procs: LocSet,
}

impl Value {
    /// The all-bottom value (no information; unreachable / never assigned).
    pub fn bot() -> Value {
        Value {
            itv: Interval::Bot,
            ptr: LocSet::empty(),
            arr: ArrayBlk::empty(),
            procs: LocSet::empty(),
        }
    }

    /// ⊤ for scalars read from unknown sources: any integer, no pointers.
    /// (Unknown *pointers* are modeled by the frontend's stub generator.)
    pub fn unknown_int() -> Value {
        Value {
            itv: Interval::top(),
            ..Value::bot()
        }
    }

    /// A pure interval value.
    pub fn of_itv(itv: Interval) -> Value {
        Value {
            itv,
            ..Value::bot()
        }
    }

    /// A pure points-to value.
    pub fn of_ptr(ptr: LocSet) -> Value {
        Value {
            ptr,
            ..Value::bot()
        }
    }

    /// A pure array-block value.
    pub fn of_arr(arr: ArrayBlk) -> Value {
        Value {
            arr,
            ..Value::bot()
        }
    }

    /// A pure function-pointer value.
    pub fn of_procs(procs: LocSet) -> Value {
        Value {
            procs,
            ..Value::bot()
        }
    }

    /// A constant integer.
    pub fn constant(n: i64) -> Value {
        Value::of_itv(Interval::constant(n))
    }

    /// Every location a dereference of this value may read or write:
    /// the points-to set plus the bases of the array component.
    pub fn deref_targets(&self) -> LocSet {
        if self.arr.is_empty() {
            return self.ptr.clone();
        }
        let arr_bases: LocSet = self.arr.bases().collect();
        self.ptr.union(&arr_bases)
    }

    /// Replaces the numeric component.
    #[must_use]
    pub fn with_itv(&self, itv: Interval) -> Value {
        Value {
            itv,
            ptr: self.ptr.clone(),
            arr: self.arr.clone(),
            procs: self.procs.clone(),
        }
    }
}

impl Lattice for Value {
    fn bottom() -> Self {
        Value::bot()
    }

    fn is_bottom(&self) -> bool {
        self.itv.is_bottom() && self.ptr.is_empty() && self.arr.is_empty() && self.procs.is_empty()
    }

    fn le(&self, other: &Self) -> bool {
        self.itv.le(&other.itv)
            && self.ptr.le(&other.ptr)
            && self.arr.le(&other.arr)
            && self.procs.le(&other.procs)
    }

    fn join(&self, other: &Self) -> Self {
        Value {
            itv: self.itv.join(&other.itv),
            ptr: self.ptr.join(&other.ptr),
            arr: self.arr.join(&other.arr),
            procs: self.procs.join(&other.procs),
        }
    }

    fn widen(&self, other: &Self) -> Self {
        Value {
            itv: self.itv.widen(&other.itv),
            ptr: self.ptr.join(&other.ptr),
            arr: self.arr.widen(&other.arr),
            procs: self.procs.join(&other.procs),
        }
    }

    fn widen_with(&self, other: &Self, thresholds: &Thresholds) -> Self {
        Value {
            itv: self.itv.widen_with(&other.itv, thresholds),
            ptr: self.ptr.join(&other.ptr),
            arr: self.arr.widen_with(&other.arr, thresholds),
            procs: self.procs.join(&other.procs),
        }
    }

    fn narrow(&self, other: &Self) -> Self {
        Value {
            itv: self.itv.narrow(&other.itv),
            ptr: self.ptr.clone(),
            arr: self.arr.narrow(&other.arr),
            procs: self.procs.clone(),
        }
    }
}

impl fmt::Debug for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut parts: Vec<String> = Vec::new();
        if !self.itv.is_bottom() {
            parts.push(format!("{}", self.itv));
        }
        if !self.ptr.is_empty() {
            parts.push(format!("ptr{:?}", self.ptr));
        }
        if !self.arr.is_empty() {
            parts.push(format!("arr{:?}", self.arr));
        }
        if !self.procs.is_empty() {
            parts.push(format!("fns{:?}", self.procs));
        }
        if parts.is_empty() {
            write!(f, "⊥")
        } else {
            write!(f, "{}", parts.join(" × "))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::laws;
    use crate::locs::AbsLoc;
    use sga_ir::{Cp, NodeId, ProcId, VarId};
    use sga_utils::Idx;

    fn vloc(i: usize) -> AbsLoc {
        AbsLoc::Var(VarId::new(i))
    }

    fn samples() -> Vec<Value> {
        let site = crate::locs::AllocSite(Cp::new(ProcId::new(0), NodeId::new(3)));
        vec![
            Value::bot(),
            Value::constant(5),
            Value::of_itv(Interval::range(0, 9)),
            Value::of_ptr(LocSet::singleton(vloc(1))),
            Value::of_ptr([vloc(1), vloc(2)].into_iter().collect()),
            Value::of_arr(ArrayBlk::alloc(AbsLoc::Alloc(site), Interval::constant(8))),
            Value::unknown_int(),
        ]
    }

    #[test]
    fn lattice_laws_on_samples() {
        let vs = samples();
        for a in &vs {
            for b in &vs {
                for c in &vs {
                    laws::check_join_laws(a, b, c);
                    laws::check_widen_narrow_laws(a, b);
                }
            }
        }
    }

    #[test]
    fn deref_targets_include_array_bases() {
        let site = crate::locs::AllocSite(Cp::new(ProcId::new(0), NodeId::new(3)));
        let v = Value {
            ptr: LocSet::singleton(vloc(1)),
            arr: ArrayBlk::alloc(AbsLoc::Alloc(site), Interval::constant(8)),
            ..Value::bot()
        };
        let targets = v.deref_targets();
        assert!(targets.contains(&vloc(1)));
        assert!(targets.contains(&AbsLoc::Alloc(site)));
        assert_eq!(targets.len(), 2);
    }

    #[test]
    fn join_is_componentwise() {
        let a = Value::constant(1);
        let b = Value::of_ptr(LocSet::singleton(vloc(1)));
        let j = a.join(&b);
        assert_eq!(j.itv, Interval::constant(1));
        assert!(j.ptr.contains(&vloc(1)));
    }

    #[test]
    fn is_bottom_checks_all_components() {
        assert!(Value::bot().is_bottom());
        assert!(!Value::constant(0).is_bottom());
        assert!(!Value::of_ptr(LocSet::singleton(vloc(0))).is_bottom());
    }
}
