//! The interval domain `Ẑ` of §3.1 — the representative non-relational
//! numeric domain used by the paper's evaluation (`Interval*` analyzers).
//!
//! Intervals are `[l, u]` with `l, u ∈ ℤ ∪ {-∞, +∞}`, plus ⊥. Arithmetic
//! that would overflow `i64` conservatively escapes to the adjacent
//! infinity, keeping the operators sound.
//!
//! # Examples
//!
//! ```
//! use sga_domains::{Interval, Lattice};
//!
//! let a = Interval::range(0, 10);
//! let b = Interval::range(5, 20);
//! assert_eq!(a.join(&b), Interval::range(0, 20));
//! assert_eq!(a.add(&b), Interval::range(5, 30));
//! assert_eq!(a.widen(&b), Interval::new(sga_domains::interval::Bound::Int(0),
//!                                        sga_domains::interval::Bound::PosInf));
//! ```

use crate::lattice::{Lattice, Thresholds};
use sga_ir::RelOp;
use std::fmt;

/// One endpoint of an interval.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Bound {
    /// `-∞`
    NegInf,
    /// A finite endpoint.
    Int(i64),
    /// `+∞`
    PosInf,
}

impl Bound {
    fn cmp_bound(self, other: Bound) -> std::cmp::Ordering {
        use Bound::*;
        match (self, other) {
            (NegInf, NegInf) | (PosInf, PosInf) => std::cmp::Ordering::Equal,
            (NegInf, _) | (_, PosInf) => std::cmp::Ordering::Less,
            (PosInf, _) | (_, NegInf) => std::cmp::Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(&b),
        }
    }

    fn min(self, other: Bound) -> Bound {
        if self.cmp_bound(other).is_le() {
            self
        } else {
            other
        }
    }

    fn max(self, other: Bound) -> Bound {
        if self.cmp_bound(other).is_ge() {
            self
        } else {
            other
        }
    }

    /// Addition; overflow escapes to the corresponding infinity.
    fn add(self, other: Bound) -> Bound {
        use Bound::*;
        match (self, other) {
            (NegInf, PosInf) | (PosInf, NegInf) => {
                unreachable!("adding opposite infinities in interval arithmetic")
            }
            (NegInf, _) | (_, NegInf) => NegInf,
            (PosInf, _) | (_, PosInf) => PosInf,
            (Int(a), Int(b)) => match a.checked_add(b) {
                Some(s) => Int(s),
                None if a > 0 => PosInf,
                None => NegInf,
            },
        }
    }

    fn neg(self) -> Bound {
        match self {
            Bound::NegInf => Bound::PosInf,
            Bound::PosInf => Bound::NegInf,
            Bound::Int(a) => a.checked_neg().map_or(Bound::PosInf, Bound::Int),
        }
    }

    fn mul(self, other: Bound) -> Bound {
        use Bound::*;
        let sign = |b: Bound| match b {
            NegInf => -1,
            PosInf => 1,
            Int(v) => v.signum() as i32,
        };
        match (self, other) {
            (Int(0), _) | (_, Int(0)) => Int(0),
            (Int(a), Int(b)) => match a.checked_mul(b) {
                Some(p) => Int(p),
                None if (a > 0) == (b > 0) => PosInf,
                None => NegInf,
            },
            _ => {
                if sign(self) * sign(other) >= 0 {
                    PosInf
                } else {
                    NegInf
                }
            }
        }
    }

    fn pred(self) -> Bound {
        match self {
            Bound::Int(a) => a.checked_sub(1).map_or(Bound::NegInf, Bound::Int),
            b => b,
        }
    }

    fn succ(self) -> Bound {
        match self {
            Bound::Int(a) => a.checked_add(1).map_or(Bound::PosInf, Bound::Int),
            b => b,
        }
    }
}

impl fmt::Display for Bound {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Bound::NegInf => write!(f, "-oo"),
            Bound::PosInf => write!(f, "+oo"),
            Bound::Int(v) => write!(f, "{v}"),
        }
    }
}

/// An interval value: ⊥ or a non-empty range.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub enum Interval {
    /// The empty interval.
    Bot,
    /// `[lo, hi]` with `lo ⩽ hi`.
    Range(Bound, Bound),
}

impl Interval {
    /// The full range `[-∞, +∞]`.
    pub fn top() -> Interval {
        Interval::Range(Bound::NegInf, Bound::PosInf)
    }

    /// The singleton `[n, n]`.
    pub fn constant(n: i64) -> Interval {
        Interval::Range(Bound::Int(n), Bound::Int(n))
    }

    /// The finite range `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn range(lo: i64, hi: i64) -> Interval {
        assert!(lo <= hi, "empty range [{lo}, {hi}]; use Interval::Bot");
        Interval::Range(Bound::Int(lo), Bound::Int(hi))
    }

    /// A range from explicit bounds, normalizing empties to ⊥.
    pub fn new(lo: Bound, hi: Bound) -> Interval {
        if lo.cmp_bound(hi).is_gt() {
            Interval::Bot
        } else {
            Interval::Range(lo, hi)
        }
    }

    /// `[n, +∞]`.
    pub fn at_least(n: i64) -> Interval {
        Interval::Range(Bound::Int(n), Bound::PosInf)
    }

    /// `[-∞, n]`.
    pub fn at_most(n: i64) -> Interval {
        Interval::Range(Bound::NegInf, Bound::Int(n))
    }

    /// Lower bound, if not ⊥.
    pub fn lo(&self) -> Option<Bound> {
        match self {
            Interval::Bot => None,
            Interval::Range(l, _) => Some(*l),
        }
    }

    /// Upper bound, if not ⊥.
    pub fn hi(&self) -> Option<Bound> {
        match self {
            Interval::Bot => None,
            Interval::Range(_, h) => Some(*h),
        }
    }

    /// The single integer this interval denotes, if exact.
    pub fn as_const(&self) -> Option<i64> {
        match self {
            Interval::Range(Bound::Int(a), Bound::Int(b)) if a == b => Some(*a),
            _ => None,
        }
    }

    /// Whether `n` is included.
    pub fn contains(&self, n: i64) -> bool {
        match self {
            Interval::Bot => false,
            Interval::Range(l, h) => {
                l.cmp_bound(Bound::Int(n)).is_le() && Bound::Int(n).cmp_bound(*h).is_le()
            }
        }
    }

    /// Greatest lower bound.
    #[must_use]
    pub fn meet(&self, other: &Interval) -> Interval {
        match (self, other) {
            (Interval::Bot, _) | (_, Interval::Bot) => Interval::Bot,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                Interval::new(l1.max(*l2), h1.min(*h2))
            }
        }
    }

    /// Abstract addition.
    #[must_use]
    pub fn add(&self, other: &Interval) -> Interval {
        match (self, other) {
            (Interval::Bot, _) | (_, Interval::Bot) => Interval::Bot,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                Interval::Range(l1.add(*l2), h1.add(*h2))
            }
        }
    }

    /// Abstract negation.
    #[must_use]
    pub fn neg(&self) -> Interval {
        match self {
            Interval::Bot => Interval::Bot,
            Interval::Range(l, h) => Interval::Range(h.neg(), l.neg()),
        }
    }

    /// Abstract subtraction.
    #[must_use]
    pub fn sub(&self, other: &Interval) -> Interval {
        self.add(&other.neg())
    }

    /// Abstract multiplication.
    #[must_use]
    pub fn mul(&self, other: &Interval) -> Interval {
        match (self, other) {
            (Interval::Bot, _) | (_, Interval::Bot) => Interval::Bot,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                let candidates = [l1.mul(*l2), l1.mul(*h2), h1.mul(*l2), h1.mul(*h2)];
                let lo = candidates.iter().copied().reduce(Bound::min).unwrap();
                let hi = candidates.iter().copied().reduce(Bound::max).unwrap();
                Interval::Range(lo, hi)
            }
        }
    }

    /// Abstract division (sound, coarse around divisors containing 0).
    #[must_use]
    pub fn div(&self, other: &Interval) -> Interval {
        match (self, other) {
            (Interval::Bot, _) | (_, Interval::Bot) => Interval::Bot,
            (_, d) if d.contains(0) => {
                // Division by a range containing zero: any result (UB in C,
                // abstracted to ⊤ to stay sound for the checker client).
                Interval::top()
            }
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                let divide = |a: Bound, b: Bound| -> Bound {
                    match (a, b) {
                        (Bound::Int(x), Bound::Int(y)) => Bound::Int(x / y),
                        (Bound::NegInf, y) => {
                            if y.cmp_bound(Bound::Int(0)).is_gt() {
                                Bound::NegInf
                            } else {
                                Bound::PosInf
                            }
                        }
                        (Bound::PosInf, y) => {
                            if y.cmp_bound(Bound::Int(0)).is_gt() {
                                Bound::PosInf
                            } else {
                                Bound::NegInf
                            }
                        }
                        (Bound::Int(_), _) => Bound::Int(0),
                    }
                };
                let candidates = [
                    divide(*l1, *l2),
                    divide(*l1, *h2),
                    divide(*h1, *l2),
                    divide(*h1, *h2),
                ];
                let lo = candidates.iter().copied().reduce(Bound::min).unwrap();
                let hi = candidates.iter().copied().reduce(Bound::max).unwrap();
                Interval::Range(lo, hi)
            }
        }
    }

    /// Abstract modulo (sound over-approximation).
    #[must_use]
    pub fn rem(&self, other: &Interval) -> Interval {
        match (self, other) {
            (Interval::Bot, _) | (_, Interval::Bot) => Interval::Bot,
            (_, d) if d.contains(0) => Interval::top(),
            (a, Interval::Range(l2, h2)) => {
                // |result| < max(|l2|, |h2|); sign follows the dividend.
                let mag = match (l2, h2) {
                    (Bound::Int(l), Bound::Int(h)) => Bound::Int(l.abs().max(h.abs()) - 1),
                    _ => Bound::PosInf,
                };
                let lo = if a.contains_negative() {
                    mag.neg()
                } else {
                    Bound::Int(0)
                };
                let hi = if a.contains_positive_or_zero() {
                    mag
                } else {
                    Bound::Int(0)
                };
                Interval::new(lo, hi)
            }
        }
    }

    fn contains_negative(&self) -> bool {
        match self {
            Interval::Bot => false,
            Interval::Range(l, _) => l.cmp_bound(Bound::Int(0)).is_lt(),
        }
    }

    fn contains_positive_or_zero(&self) -> bool {
        match self {
            Interval::Bot => false,
            Interval::Range(_, h) => h.cmp_bound(Bound::Int(0)).is_ge(),
        }
    }

    /// Refines `self` assuming `self ⋈ other` holds — the transfer function
    /// of `assume(x ⋈ e)` from §3.1.
    #[must_use]
    pub fn filter(&self, op: RelOp, other: &Interval) -> Interval {
        let (Interval::Range(l, h), Interval::Range(ol, oh)) = (*self, *other) else {
            return Interval::Bot;
        };
        match op {
            RelOp::Lt => self.meet(&Interval::new(Bound::NegInf, oh.pred())),
            RelOp::Le => self.meet(&Interval::new(Bound::NegInf, oh)),
            RelOp::Gt => self.meet(&Interval::new(ol.succ(), Bound::PosInf)),
            RelOp::Ge => self.meet(&Interval::new(ol, Bound::PosInf)),
            RelOp::Eq => self.meet(other),
            RelOp::Ne => {
                // Only improves when `other` is a constant touching an endpoint.
                if let Some(n) = other.as_const() {
                    if l == Bound::Int(n) && h == Bound::Int(n) {
                        Interval::Bot
                    } else if l == Bound::Int(n) {
                        Interval::new(l.succ(), h)
                    } else if h == Bound::Int(n) {
                        Interval::new(l, h.pred())
                    } else {
                        *self
                    }
                } else {
                    *self
                }
            }
        }
    }

    /// The comparison result `self ⋈ other` as a boolean interval
    /// (`[0,0]` false, `[1,1]` true, `[0,1]` unknown).
    #[must_use]
    pub fn cmp_result(&self, op: RelOp, other: &Interval) -> Interval {
        if self.is_bottom() || other.is_bottom() {
            return Interval::Bot;
        }
        let true_branch = self.filter(op, other);
        let false_branch = self.filter(op.negate(), other);
        match (true_branch.is_bottom(), false_branch.is_bottom()) {
            (true, true) => Interval::Bot,
            (true, false) => Interval::constant(0),
            (false, true) => Interval::constant(1),
            (false, false) => Interval::range(0, 1),
        }
    }
}

impl Lattice for Interval {
    fn bottom() -> Self {
        Interval::Bot
    }

    fn le(&self, other: &Self) -> bool {
        match (self, other) {
            (Interval::Bot, _) => true,
            (_, Interval::Bot) => false,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                l2.cmp_bound(*l1).is_le() && h1.cmp_bound(*h2).is_le()
            }
        }
    }

    fn join(&self, other: &Self) -> Self {
        match (self, other) {
            (Interval::Bot, x) | (x, Interval::Bot) => *x,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                Interval::Range(l1.min(*l2), h1.max(*h2))
            }
        }
    }

    fn widen(&self, other: &Self) -> Self {
        match (self, other) {
            (Interval::Bot, x) | (x, Interval::Bot) => *x,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                let lo = if l2.cmp_bound(*l1).is_lt() {
                    Bound::NegInf
                } else {
                    *l1
                };
                let hi = if h2.cmp_bound(*h1).is_gt() {
                    Bound::PosInf
                } else {
                    *h1
                };
                Interval::Range(lo, hi)
            }
        }
    }

    fn widen_with(&self, other: &Self, thresholds: &Thresholds) -> Self {
        match (self, other) {
            (Interval::Bot, x) | (x, Interval::Bot) => *x,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                let lo = if l2.cmp_bound(*l1).is_lt() {
                    match l2 {
                        Bound::Int(v) => thresholds.clamp_lo(*v).map_or(Bound::NegInf, Bound::Int),
                        _ => Bound::NegInf,
                    }
                } else {
                    *l1
                };
                let hi = if h2.cmp_bound(*h1).is_gt() {
                    match h2 {
                        Bound::Int(v) => thresholds.clamp_hi(*v).map_or(Bound::PosInf, Bound::Int),
                        _ => Bound::PosInf,
                    }
                } else {
                    *h1
                };
                Interval::Range(lo, hi)
            }
        }
    }

    fn narrow(&self, other: &Self) -> Self {
        match (self, other) {
            (Interval::Bot, _) | (_, Interval::Bot) => Interval::Bot,
            (Interval::Range(l1, h1), Interval::Range(l2, h2)) => {
                let lo = if *l1 == Bound::NegInf { *l2 } else { *l1 };
                let hi = if *h1 == Bound::PosInf { *h2 } else { *h1 };
                Interval::new(lo, hi)
            }
        }
    }
}

impl fmt::Debug for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Interval::Bot => write!(f, "⊥"),
            Interval::Range(l, h) => write!(f, "[{l}, {h}]"),
        }
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::laws;
    use proptest::prelude::*;

    fn arb_interval() -> impl Strategy<Value = Interval> {
        prop_oneof![
            Just(Interval::Bot),
            Just(Interval::top()),
            (-100i64..100).prop_map(Interval::constant),
            (-100i64..100, 0i64..50).prop_map(|(l, w)| Interval::range(l, l + w)),
            (-100i64..100).prop_map(Interval::at_least),
            (-100i64..100).prop_map(Interval::at_most),
        ]
    }

    #[test]
    fn constants_and_ranges() {
        assert_eq!(Interval::constant(5).as_const(), Some(5));
        assert!(Interval::range(1, 3).contains(2));
        assert!(!Interval::range(1, 3).contains(4));
        assert!(Interval::top().contains(i64::MAX));
    }

    #[test]
    fn arithmetic_basics() {
        let a = Interval::range(1, 2);
        let b = Interval::range(10, 20);
        assert_eq!(a.add(&b), Interval::range(11, 22));
        assert_eq!(b.sub(&a), Interval::range(8, 19));
        assert_eq!(a.mul(&b), Interval::range(10, 40));
        assert_eq!(a.neg(), Interval::range(-2, -1));
        assert_eq!(b.div(&a), Interval::range(5, 20));
    }

    #[test]
    fn mul_with_negatives() {
        let a = Interval::range(-3, 2);
        let b = Interval::range(-1, 4);
        // min over cross products: -3*4 = -12; max: -3*-1=3, 2*4=8 → 8.
        assert_eq!(a.mul(&b), Interval::range(-12, 8));
    }

    #[test]
    fn div_by_zero_containing_is_top() {
        assert_eq!(
            Interval::range(1, 2).div(&Interval::range(-1, 1)),
            Interval::top()
        );
    }

    #[test]
    fn rem_bounded_by_divisor() {
        let r = Interval::range(0, 100).rem(&Interval::range(1, 10));
        assert_eq!(r, Interval::range(0, 9));
        let r2 = Interval::range(-5, 100).rem(&Interval::range(3, 3));
        assert_eq!(r2, Interval::range(-2, 2));
    }

    #[test]
    fn widen_escapes_moving_bounds() {
        let a = Interval::range(0, 10);
        let b = Interval::range(0, 11);
        assert_eq!(a.widen(&b), Interval::new(Bound::Int(0), Bound::PosInf));
        let c = Interval::range(-1, 10);
        assert_eq!(a.widen(&c), Interval::new(Bound::NegInf, Bound::Int(10)));
        assert_eq!(a.widen(&a), a);
    }

    #[test]
    fn widen_with_lands_on_thresholds() {
        let th = Thresholds::new(vec![0, 64, 1024]);
        let a = Interval::range(0, 10);
        let b = Interval::range(0, 11);
        // Growing upper bound clamps to the smallest threshold ≥ 11.
        assert_eq!(a.widen_with(&b, &th), Interval::range(0, 64));
        // Growing past the largest threshold escapes to +∞.
        let c = Interval::range(0, 2000);
        assert_eq!(
            a.widen_with(&c, &th),
            Interval::new(Bound::Int(0), Bound::PosInf)
        );
        // Falling lower bound clamps to the largest threshold ≤ -1... none
        // here, so -∞.
        let d = Interval::range(-1, 10);
        assert_eq!(
            a.widen_with(&d, &th),
            Interval::new(Bound::NegInf, Bound::Int(10))
        );
        // Stable bounds are untouched.
        assert_eq!(a.widen_with(&a, &th), a);
        // Empty thresholds degrade to the naive widen.
        assert_eq!(a.widen_with(&b, &Thresholds::none()), a.widen(&b));
    }

    #[test]
    fn widen_with_chains_terminate() {
        let th = Thresholds::new(vec![10, 100, 1000]);
        // A bound that keeps moving walks up the (finite) threshold ladder
        // and then escapes; each step must grow, so the chain stabilizes.
        let mut acc = Interval::range(0, 1);
        for step in 2..2005 {
            let next = acc.widen_with(&Interval::range(0, step), &th);
            assert!(acc.le(&next));
            acc = next;
        }
        assert_eq!(acc, Interval::new(Bound::Int(0), Bound::PosInf));
    }

    #[test]
    fn widen_with_over_approximates_join() {
        let th = Thresholds::new(vec![-50, 0, 50]);
        for a in [
            Interval::range(0, 10),
            Interval::range(-100, 3),
            Interval::Bot,
        ] {
            for b in [
                Interval::range(-7, 45),
                Interval::top(),
                Interval::constant(51),
                Interval::Bot,
            ] {
                let j = a.join(&b);
                let w = a.widen_with(&b, &th);
                assert!(j.le(&w), "{j:?} ⋢ {w:?} for {a:?} ∇_T {b:?}");
            }
        }
    }

    #[test]
    fn narrow_recovers_finite_bounds() {
        let widened = Interval::new(Bound::Int(0), Bound::PosInf);
        let refined = Interval::range(0, 41);
        assert_eq!(widened.narrow(&refined), Interval::range(0, 41));
    }

    #[test]
    fn filter_lt() {
        let x = Interval::range(0, 100);
        let n = Interval::constant(10);
        assert_eq!(x.filter(RelOp::Lt, &n), Interval::range(0, 9));
        assert_eq!(x.filter(RelOp::Ge, &n), Interval::range(10, 100));
        assert_eq!(x.filter(RelOp::Eq, &n), Interval::constant(10));
        assert_eq!(Interval::constant(10).filter(RelOp::Ne, &n), Interval::Bot);
    }

    #[test]
    fn filter_against_range() {
        let x = Interval::range(0, 100);
        let e = Interval::range(10, 20);
        // x < [10,20] possible whenever x < 20.
        assert_eq!(x.filter(RelOp::Lt, &e), Interval::range(0, 19));
        assert_eq!(x.filter(RelOp::Gt, &e), Interval::range(11, 100));
    }

    #[test]
    fn cmp_result_three_values() {
        let x = Interval::range(0, 5);
        assert_eq!(
            x.cmp_result(RelOp::Lt, &Interval::constant(10)),
            Interval::constant(1)
        );
        assert_eq!(
            x.cmp_result(RelOp::Gt, &Interval::constant(10)),
            Interval::constant(0)
        );
        assert_eq!(
            x.cmp_result(RelOp::Lt, &Interval::constant(3)),
            Interval::range(0, 1)
        );
    }

    #[test]
    fn overflow_saturates_to_infinity() {
        let big = Interval::constant(i64::MAX);
        let one = Interval::constant(1);
        let sum = big.add(&one);
        assert_eq!(
            sum,
            Interval::Range(Bound::PosInf, Bound::PosInf).meet(&sum)
        );
        assert!(Interval::constant(i64::MIN).neg().hi() == Some(Bound::PosInf));
    }

    proptest! {
        #[test]
        fn lattice_laws(a in arb_interval(), b in arb_interval(), c in arb_interval()) {
            laws::check_join_laws(&a, &b, &c);
            laws::check_widen_narrow_laws(&a, &b);
        }

        #[test]
        fn widening_chains_stabilize(xs in prop::collection::vec(arb_interval(), 1..20)) {
            let mut acc = Interval::Bot;
            let mut prev;
            for x in &xs {
                prev = acc;
                acc = acc.widen(x);
                prop_assert!(prev.le(&acc));
            }
            // One more widening with anything ⊑ acc must be stable.
            for x in &xs {
                let stable = acc.widen(&x.meet(&acc));
                prop_assert_eq!(stable, acc);
            }
        }

        #[test]
        fn add_sound_on_samples(a in arb_interval(), b in arb_interval(),
                                x in -99i64..99, y in -99i64..99) {
            if a.contains(x) && b.contains(y) {
                prop_assert!(a.add(&b).contains(x + y));
                prop_assert!(a.sub(&b).contains(x - y));
                prop_assert!(a.mul(&b).contains(x * y));
                if y != 0 {
                    prop_assert!(a.div(&b).contains(x / y));
                    prop_assert!(a.rem(&b).contains(x % y));
                }
            }
        }

        #[test]
        fn filter_sound_on_samples(a in arb_interval(), b in arb_interval(),
                                   x in -99i64..99, y in -99i64..99) {
            let holds = |op: RelOp| match op {
                RelOp::Lt => x < y,
                RelOp::Le => x <= y,
                RelOp::Gt => x > y,
                RelOp::Ge => x >= y,
                RelOp::Eq => x == y,
                RelOp::Ne => x != y,
            };
            for op in [RelOp::Lt, RelOp::Le, RelOp::Gt, RelOp::Ge, RelOp::Eq, RelOp::Ne] {
                if a.contains(x) && b.contains(y) && holds(op) {
                    prop_assert!(a.filter(op, &b).contains(x),
                        "filter {op:?} dropped {x} from {a:?} given {b:?}");
                }
            }
        }
    }
}
