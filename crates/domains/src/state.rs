//! Abstract states `Ŝ = L̂ → V̂` (§2.3), backed by the persistent map.
//!
//! Unbound locations denote ⊥ — a state is the *finite support* of the
//! pointwise-lifted function, which is exactly what sparse analysis exploits:
//! sparse states bind only the locations in `D̂(c)`.

use crate::lattice::{Lattice, Thresholds};
use crate::locs::{AbsLoc, LocSet};
use crate::value::Value;
use sga_utils::PMap;
use std::fmt;

/// An abstract memory state.
#[derive(Clone, PartialEq, Default)]
pub struct State {
    map: PMap<AbsLoc, Value>,
}

impl State {
    /// The empty (all-⊥) state.
    pub fn new() -> State {
        State { map: PMap::new() }
    }

    /// Number of bound locations.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether no location is bound.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up `l`, returning ⊥ for unbound locations.
    pub fn get(&self, l: &AbsLoc) -> Value {
        self.map.get(l).cloned().unwrap_or_else(Value::bot)
    }

    /// Borrowing lookup (`None` = ⊥).
    pub fn get_ref(&self, l: &AbsLoc) -> Option<&Value> {
        self.map.get(l)
    }

    /// Strong update: `s[l ↦ v]`.
    #[must_use = "State::set returns the updated state"]
    pub fn set(&self, l: AbsLoc, v: Value) -> State {
        State {
            map: self.map.insert(l, v),
        }
    }

    /// Weak update: `s[l ↦ s(l) ⊔ v]` (§2.1's `f[{...} ⤇ b]`).
    #[must_use = "State::weak_set returns the updated state"]
    pub fn weak_set(&self, l: AbsLoc, v: &Value) -> State {
        let joined = match self.map.get(&l) {
            Some(old) => old.join(v),
            None => v.clone(),
        };
        State {
            map: self.map.insert(l, joined),
        }
    }

    /// Weak update over a whole target set — the store transfer function
    /// `s[ŝ(x).P̂ ⤇ Ê(e)(ŝ)]`.
    #[must_use = "State::weak_set_all returns the updated state"]
    pub fn weak_set_all(&self, targets: &LocSet, v: &Value) -> State {
        let mut s = self.clone();
        for &l in targets {
            s = s.weak_set(l, v);
        }
        s
    }

    /// Removes a binding (restriction `s\l`).
    #[must_use = "State::unbind returns the updated state"]
    pub fn unbind(&self, l: &AbsLoc) -> State {
        State {
            map: self.map.remove(l),
        }
    }

    /// Restriction `s|locs`: keeps only the given locations.
    #[must_use = "State::restrict returns the restricted state"]
    pub fn restrict(&self, locs: &LocSet) -> State {
        // Iterate the smaller side.
        if locs.len() < self.map.len() {
            let mut out = State::new();
            for l in locs {
                if let Some(v) = self.map.get(l) {
                    out = out.set(*l, v.clone());
                }
            }
            out
        } else {
            State {
                map: self.map.filter(|l, _| locs.contains(l)),
            }
        }
    }

    /// Iterates over bound `(location, value)` pairs in location order.
    pub fn iter(&self) -> impl Iterator<Item = (&AbsLoc, &Value)> + '_ {
        self.map.iter()
    }

    /// Bound locations.
    pub fn locs(&self) -> impl Iterator<Item = &AbsLoc> + '_ {
        self.map.keys()
    }

    /// O(1) shared-root equality shortcut.
    pub fn ptr_eq(&self, other: &State) -> bool {
        self.map.ptr_eq(&other.map)
    }

    /// Wraps a raw binding map (used by the sparse engine, whose generic
    /// states are `PMap`s).
    pub fn from_pmap(map: PMap<AbsLoc, Value>) -> State {
        State { map }
    }

    /// Borrows the underlying binding map.
    pub fn as_pmap(&self) -> &PMap<AbsLoc, Value> {
        &self.map
    }

    /// Unwraps into the underlying binding map.
    pub fn into_pmap(self) -> PMap<AbsLoc, Value> {
        self.map
    }
}

impl Lattice for State {
    fn bottom() -> Self {
        State::new()
    }

    fn is_bottom(&self) -> bool {
        self.map.is_empty()
    }

    fn le(&self, other: &Self) -> bool {
        if self.ptr_eq(other) {
            return true;
        }
        self.map.iter().all(|(l, v)| match other.map.get(l) {
            Some(ov) => v.le(ov),
            None => v.is_bottom(),
        })
    }

    fn join(&self, other: &Self) -> Self {
        State {
            map: self.map.union_with(&other.map, |_, a, b| a.join(b)),
        }
    }

    fn widen(&self, other: &Self) -> Self {
        State {
            map: self.map.union_with(&other.map, |_, a, b| a.widen(b)),
        }
    }

    fn widen_with(&self, other: &Self, thresholds: &Thresholds) -> Self {
        State {
            map: self
                .map
                .union_with(&other.map, |_, a, b| a.widen_with(b, thresholds)),
        }
    }

    fn narrow(&self, other: &Self) -> Self {
        // Pointwise narrow on bindings of `self`; bindings missing from
        // `other` narrow towards ⊥ only via their own components.
        let mut out = self.map.clone();
        for (l, v) in self.map.iter() {
            if let Some(ov) = other.map.get(l) {
                out = out.insert(*l, v.narrow(ov));
            }
        }
        State { map: out }
    }
}

impl fmt::Debug for State {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.map.iter()).finish()
    }
}

impl FromIterator<(AbsLoc, Value)> for State {
    fn from_iter<I: IntoIterator<Item = (AbsLoc, Value)>>(iter: I) -> Self {
        State {
            map: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::Interval;
    use crate::lattice::laws;
    use sga_ir::VarId;
    use sga_utils::Idx;

    fn l(i: usize) -> AbsLoc {
        AbsLoc::Var(VarId::new(i))
    }

    #[test]
    fn unbound_is_bottom() {
        let s = State::new();
        assert!(s.get(&l(0)).is_bottom());
        assert!(s.get_ref(&l(0)).is_none());
    }

    #[test]
    fn strong_update_replaces() {
        let s = State::new()
            .set(l(0), Value::constant(1))
            .set(l(0), Value::constant(2));
        assert_eq!(s.get(&l(0)).itv, Interval::constant(2));
    }

    #[test]
    fn weak_update_joins() {
        let s = State::new()
            .set(l(0), Value::constant(1))
            .weak_set(l(0), &Value::constant(5));
        assert_eq!(s.get(&l(0)).itv, Interval::range(1, 5));
    }

    #[test]
    fn weak_set_all_hits_every_target() {
        let targets: LocSet = [l(1), l(2)].into_iter().collect();
        let s = State::new()
            .set(l(1), Value::constant(0))
            .weak_set_all(&targets, &Value::constant(9));
        assert_eq!(s.get(&l(1)).itv, Interval::range(0, 9));
        assert_eq!(s.get(&l(2)).itv, Interval::constant(9));
    }

    #[test]
    fn restrict_keeps_only_given() {
        let s = State::new()
            .set(l(0), Value::constant(1))
            .set(l(1), Value::constant(2));
        let keep: LocSet = [l(1), l(7)].into_iter().collect();
        let r = s.restrict(&keep);
        assert_eq!(r.len(), 1);
        assert_eq!(r.get(&l(1)).itv, Interval::constant(2));
    }

    #[test]
    fn join_is_pointwise() {
        let a = State::new().set(l(0), Value::constant(1));
        let b = State::new()
            .set(l(0), Value::constant(3))
            .set(l(1), Value::constant(7));
        let j = a.join(&b);
        assert_eq!(j.get(&l(0)).itv, Interval::range(1, 3));
        assert_eq!(j.get(&l(1)).itv, Interval::constant(7));
    }

    #[test]
    fn le_treats_missing_as_bottom() {
        let a = State::new().set(l(0), Value::constant(1));
        let b = State::new().set(l(0), Value::of_itv(Interval::range(0, 2)));
        assert!(a.le(&b));
        assert!(!b.le(&a));
        assert!(State::new().le(&a));
        let with_bot = State::new().set(l(9), Value::bot());
        assert!(
            with_bot.le(&State::new()),
            "explicit ⊥ binding ⊑ empty state"
        );
    }

    #[test]
    fn lattice_laws_on_samples() {
        let states = [
            State::new(),
            State::new().set(l(0), Value::constant(1)),
            State::new()
                .set(l(0), Value::of_itv(Interval::range(0, 5)))
                .set(l(1), Value::constant(2)),
            State::new().set(l(2), Value::unknown_int()),
        ];
        for a in &states {
            for b in &states {
                for c in &states {
                    laws::check_join_laws(a, b, c);
                    laws::check_widen_narrow_laws(a, b);
                }
            }
        }
    }

    #[test]
    fn widen_escapes_growing_interval() {
        let a = State::new().set(l(0), Value::of_itv(Interval::range(0, 1)));
        let b = State::new().set(l(0), Value::of_itv(Interval::range(0, 2)));
        let w = a.widen(&b);
        assert_eq!(w.get(&l(0)).itv.hi(), Some(crate::interval::Bound::PosInf));
    }
}
