//! Variable packs for packed relational analysis (§4).
//!
//! A pack is a set of variables selected to be related together; the packed
//! relational state maps packs (the abstract locations of the relational
//! instance) to octagon constraints over the pack's members. §4 assumes
//! `⋃Packs = Var` and that every variable also has a singleton pack — the
//! singleton packs are what the projection `π_x` reads (§4.2).

use sga_ir::VarId;
use sga_utils::{new_index, FxHashMap, IndexVec};
use std::fmt;
use std::rc::Rc;

new_index!(pub struct PackId, "pk");

/// A sorted, deduplicated set of variables related together.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pack(Rc<[VarId]>);

impl Pack {
    /// Builds a pack from members (sorted and deduplicated).
    pub fn new(mut members: Vec<VarId>) -> Pack {
        members.sort_unstable();
        members.dedup();
        Pack(Rc::from(members))
    }

    /// The singleton pack `⟪x⟫`.
    pub fn singleton(x: VarId) -> Pack {
        Pack(Rc::from([x]))
    }

    /// Members in ascending order.
    pub fn members(&self) -> &[VarId] {
        &self.0
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the pack is empty (never true for well-formed pack sets).
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test.
    pub fn contains(&self, x: VarId) -> bool {
        self.0.binary_search(&x).is_ok()
    }

    /// Index of `x` within the pack — the octagon variable index.
    pub fn index_of(&self, x: VarId) -> Option<usize> {
        self.0.binary_search(&x).ok()
    }
}

impl fmt::Debug for Pack {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟪")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, "⟫")
    }
}

/// The program's pack set, with the `pack(x)` reverse index from §4.1.
#[derive(Clone, Debug, Default)]
pub struct PackSet {
    packs: IndexVec<PackId, Pack>,
    by_var: FxHashMap<VarId, Vec<PackId>>,
    singleton_of: FxHashMap<VarId, PackId>,
}

impl PackSet {
    /// Builds a pack set. Singleton packs for every mentioned variable are
    /// added automatically (required by the projection of §4.2).
    pub fn new(packs: impl IntoIterator<Item = Pack>) -> PackSet {
        let mut set = PackSet::default();
        let mut seen: FxHashMap<Pack, PackId> = FxHashMap::default();
        let add = |set: &mut PackSet, seen: &mut FxHashMap<Pack, PackId>, pack: Pack| {
            if let Some(&id) = seen.get(&pack) {
                return id;
            }
            let id = set.packs.push(pack.clone());
            for &v in pack.members() {
                set.by_var.entry(v).or_default().push(id);
            }
            seen.insert(pack, id);
            id
        };
        let mut vars: Vec<VarId> = Vec::new();
        for pack in packs {
            if pack.is_empty() {
                continue;
            }
            vars.extend_from_slice(pack.members());
            add(&mut set, &mut seen, pack);
        }
        vars.sort_unstable();
        vars.dedup();
        for v in vars {
            let id = add(&mut set, &mut seen, Pack::singleton(v));
            set.singleton_of.insert(v, id);
        }
        set
    }

    /// All packs.
    pub fn iter(&self) -> impl Iterator<Item = (PackId, &Pack)> + '_ {
        self.packs.iter_enumerated()
    }

    /// The pack with id `id`.
    pub fn pack(&self, id: PackId) -> &Pack {
        &self.packs[id]
    }

    /// Number of packs (including singletons).
    pub fn len(&self) -> usize {
        self.packs.len()
    }

    /// Whether there are no packs.
    pub fn is_empty(&self) -> bool {
        self.packs.is_empty()
    }

    /// `pack(x)`: ids of every pack containing `x` (§4.1).
    pub fn packs_of(&self, x: VarId) -> &[PackId] {
        self.by_var.get(&x).map_or(&[], Vec::as_slice)
    }

    /// The singleton pack of `x`, if `x` is packed at all.
    pub fn singleton_id(&self, x: VarId) -> Option<PackId> {
        self.singleton_of.get(&x).copied()
    }

    /// Average pack size — reported in §6.2's discussion (5–7 for the
    /// paper's benchmarks).
    pub fn average_size(&self) -> f64 {
        if self.packs.is_empty() {
            return 0.0;
        }
        let total: usize = self.packs.iter().map(Pack::len).sum();
        total as f64 / self.packs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sga_utils::Idx;

    fn v(i: usize) -> VarId {
        VarId::new(i)
    }

    #[test]
    fn pack_sorts_and_dedups() {
        let p = Pack::new(vec![v(3), v(1), v(3)]);
        assert_eq!(p.members(), &[v(1), v(3)]);
        assert_eq!(p.index_of(v(3)), Some(1));
        assert_eq!(p.index_of(v(2)), None);
    }

    #[test]
    fn packset_adds_singletons() {
        let set = PackSet::new(vec![Pack::new(vec![v(0), v(1)])]);
        // ⟪0,1⟫ plus singletons ⟪0⟫ and ⟪1⟫.
        assert_eq!(set.len(), 3);
        assert!(set.singleton_id(v(0)).is_some());
        assert!(set.singleton_id(v(1)).is_some());
        assert_eq!(set.packs_of(v(0)).len(), 2);
    }

    #[test]
    fn packset_dedups_packs() {
        let set = PackSet::new(vec![
            Pack::new(vec![v(0), v(1)]),
            Pack::new(vec![v(1), v(0)]),
            Pack::singleton(v(0)),
        ]);
        assert_eq!(set.len(), 3, "duplicate packs collapse");
    }

    #[test]
    fn average_size() {
        let set = PackSet::new(vec![Pack::new(vec![v(0), v(1), v(2)])]);
        // sizes: 3, 1, 1, 1 → avg 1.5
        assert!((set.average_size() - 1.5).abs() < 1e-9);
    }
}
