//! The lattice interface every abstract domain implements.

/// A join-semilattice with widening/narrowing, as required by the abstract
/// interpretation framework the analyses are built on.
///
/// Laws (checked by property tests on each implementation):
///
/// * `join` is the least upper bound: `a ⊑ a ⊔ b`, `b ⊑ a ⊔ b`, and it is
///   idempotent/commutative/associative;
/// * `bottom` is the unit: `⊥ ⊔ a = a`;
/// * `widen` over-approximates join: `a ⊔ b ⊑ a ∇ b`, and any ascending
///   chain `x_{n+1} = x_n ∇ y_n` stabilizes;
/// * `narrow` stays between: `b ⊑ a △ b ⊑ a` whenever `b ⊑ a`.
pub trait Lattice: Clone + PartialEq {
    /// The least element.
    fn bottom() -> Self;

    /// Whether this is the least element.
    fn is_bottom(&self) -> bool {
        *self == Self::bottom()
    }

    /// Partial-order test `self ⊑ other`.
    fn le(&self, other: &Self) -> bool;

    /// Least upper bound.
    #[must_use = "join returns the joined value"]
    fn join(&self, other: &Self) -> Self;

    /// Widening `self ∇ other`; defaults to `join` for finite-height domains.
    #[must_use = "widen returns the widened value"]
    fn widen(&self, other: &Self) -> Self {
        self.join(other)
    }

    /// Narrowing `self △ other`; defaults to keeping `self` (always sound
    /// when `other ⊑ self`).
    #[must_use = "narrow returns the narrowed value"]
    fn narrow(&self, other: &Self) -> Self {
        let _ = other;
        self.clone()
    }
}

/// Property-test helpers shared by the domain test suites.
#[doc(hidden)]
pub mod laws {
    use super::Lattice;

    /// Asserts the join laws on a triple.
    pub fn check_join_laws<L: Lattice + std::fmt::Debug>(a: &L, b: &L, c: &L) {
        let ab = a.join(b);
        assert!(a.le(&ab), "a ⋢ a⊔b: {a:?} vs {ab:?}");
        assert!(b.le(&ab), "b ⋢ a⊔b: {b:?} vs {ab:?}");
        assert_eq!(a.join(a), a.clone(), "join not idempotent");
        assert_eq!(ab, b.join(a), "join not commutative");
        assert_eq!(
            a.join(&b.join(c)),
            a.join(b).join(c),
            "join not associative"
        );
        assert_eq!(L::bottom().join(a), a.clone(), "⊥ not unit");
        assert!(L::bottom().le(a), "⊥ not least");
    }

    /// Asserts `a ⊔ b ⊑ a ∇ b` and that narrowing stays in range.
    pub fn check_widen_narrow_laws<L: Lattice + std::fmt::Debug>(a: &L, b: &L) {
        let j = a.join(b);
        let w = a.widen(b);
        assert!(j.le(&w), "join ⋢ widen: {j:?} vs {w:?}");
        let n = w.narrow(&j);
        assert!(
            j.le(&n) && n.le(&w),
            "narrow out of range: {j:?} ⊑ {n:?} ⊑ {w:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny two-point lattice to exercise the default methods.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum TwoPoint {
        Bot,
        Top,
    }

    impl Lattice for TwoPoint {
        fn bottom() -> Self {
            TwoPoint::Bot
        }
        fn le(&self, other: &Self) -> bool {
            matches!((self, other), (TwoPoint::Bot, _) | (_, TwoPoint::Top))
        }
        fn join(&self, other: &Self) -> Self {
            if *self == TwoPoint::Top || *other == TwoPoint::Top {
                TwoPoint::Top
            } else {
                TwoPoint::Bot
            }
        }
    }

    #[test]
    fn default_widen_is_join() {
        assert_eq!(TwoPoint::Bot.widen(&TwoPoint::Top), TwoPoint::Top);
    }

    #[test]
    fn default_narrow_keeps_self() {
        assert_eq!(TwoPoint::Top.narrow(&TwoPoint::Bot), TwoPoint::Top);
    }

    #[test]
    fn laws_hold_for_two_point() {
        for a in [TwoPoint::Bot, TwoPoint::Top] {
            for b in [TwoPoint::Bot, TwoPoint::Top] {
                for c in [TwoPoint::Bot, TwoPoint::Top] {
                    laws::check_join_laws(&a, &b, &c);
                    laws::check_widen_narrow_laws(&a, &b);
                }
            }
        }
    }
}
