//! The lattice interface every abstract domain implements, plus the
//! [`Thresholds`] set consumed by threshold widening.

use std::sync::Arc;

/// A finite, sorted set of widening thresholds — "landing points" a growing
/// interval bound may be clamped to before escaping to ±∞.
///
/// Thresholds are harvested per program (constants in guards, array sizes,
/// allocation sites), so a bound that is heading towards a program constant
/// stabilizes *at* that constant instead of being widened past it. The set
/// is finite, so threshold widening still terminates: a moving bound either
/// lands on a threshold (each subsequent escape picks a strictly more
/// extreme one) or falls off the end to ±∞.
///
/// The empty set degrades every `widen_with` to the plain `widen`.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Thresholds {
    /// Sorted, deduplicated threshold values.
    values: Arc<[i64]>,
    /// `values` merged with their doubles — the candidate set for octagon
    /// DBM entries, where unary constraints are stored as `2x ≤ c`.
    dbm_values: Arc<[i64]>,
}

impl Thresholds {
    /// The empty set (threshold widening off).
    pub fn none() -> Thresholds {
        Thresholds::default()
    }

    /// Builds the set from raw harvested constants (sorted + deduplicated
    /// here; duplicates and disorder are fine).
    pub fn new(mut values: Vec<i64>) -> Thresholds {
        values.sort_unstable();
        values.dedup();
        let mut dbm: Vec<i64> = values
            .iter()
            .flat_map(|&v| [v, v.saturating_mul(2)])
            .collect();
        dbm.sort_unstable();
        dbm.dedup();
        Thresholds {
            values: values.into(),
            dbm_values: dbm.into(),
        }
    }

    /// Whether no thresholds are present.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Number of thresholds.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// The threshold values, ascending.
    pub fn iter(&self) -> impl Iterator<Item = i64> + '_ {
        self.values.iter().copied()
    }

    /// The smallest threshold `≥ v`, if any — the clamp for a growing upper
    /// bound.
    pub fn clamp_hi(&self, v: i64) -> Option<i64> {
        let i = self.values.partition_point(|&t| t < v);
        self.values.get(i).copied()
    }

    /// The largest threshold `≤ v`, if any — the clamp for a falling lower
    /// bound.
    pub fn clamp_lo(&self, v: i64) -> Option<i64> {
        let i = self.values.partition_point(|&t| t <= v);
        i.checked_sub(1).map(|i| self.values[i])
    }

    /// The smallest DBM candidate `≥ v` (thresholds and their doubles), for
    /// octagon constraint entries.
    pub fn clamp_dbm(&self, v: i64) -> Option<i64> {
        let i = self.dbm_values.partition_point(|&t| t < v);
        self.dbm_values.get(i).copied()
    }
}

/// A join-semilattice with widening/narrowing, as required by the abstract
/// interpretation framework the analyses are built on.
///
/// Laws (checked by property tests on each implementation):
///
/// * `join` is the least upper bound: `a ⊑ a ⊔ b`, `b ⊑ a ⊔ b`, and it is
///   idempotent/commutative/associative;
/// * `bottom` is the unit: `⊥ ⊔ a = a`;
/// * `widen` over-approximates join: `a ⊔ b ⊑ a ∇ b`, and any ascending
///   chain `x_{n+1} = x_n ∇ y_n` stabilizes;
/// * `narrow` stays between: `b ⊑ a △ b ⊑ a` whenever `b ⊑ a`.
pub trait Lattice: Clone + PartialEq {
    /// The least element.
    fn bottom() -> Self;

    /// Whether this is the least element.
    fn is_bottom(&self) -> bool {
        *self == Self::bottom()
    }

    /// Partial-order test `self ⊑ other`.
    fn le(&self, other: &Self) -> bool;

    /// Least upper bound.
    #[must_use = "join returns the joined value"]
    fn join(&self, other: &Self) -> Self;

    /// Widening `self ∇ other`; defaults to `join` for finite-height domains.
    #[must_use = "widen returns the widened value"]
    fn widen(&self, other: &Self) -> Self {
        self.join(other)
    }

    /// Threshold widening `self ∇_T other`: like [`Lattice::widen`], but a
    /// moving bound may stabilize at a harvested threshold instead of
    /// escaping straight to ±∞. Defaults to ignoring the thresholds, so
    /// domains without a numeric bound (and the empty threshold set) behave
    /// exactly like `widen`.
    #[must_use = "widen_with returns the widened value"]
    fn widen_with(&self, other: &Self, thresholds: &Thresholds) -> Self {
        let _ = thresholds;
        self.widen(other)
    }

    /// Narrowing `self △ other`; defaults to keeping `self` (always sound
    /// when `other ⊑ self`).
    #[must_use = "narrow returns the narrowed value"]
    fn narrow(&self, other: &Self) -> Self {
        let _ = other;
        self.clone()
    }
}

/// Property-test helpers shared by the domain test suites.
#[doc(hidden)]
pub mod laws {
    use super::Lattice;

    /// Asserts the join laws on a triple.
    pub fn check_join_laws<L: Lattice + std::fmt::Debug>(a: &L, b: &L, c: &L) {
        let ab = a.join(b);
        assert!(a.le(&ab), "a ⋢ a⊔b: {a:?} vs {ab:?}");
        assert!(b.le(&ab), "b ⋢ a⊔b: {b:?} vs {ab:?}");
        assert_eq!(a.join(a), a.clone(), "join not idempotent");
        assert_eq!(ab, b.join(a), "join not commutative");
        assert_eq!(
            a.join(&b.join(c)),
            a.join(b).join(c),
            "join not associative"
        );
        assert_eq!(L::bottom().join(a), a.clone(), "⊥ not unit");
        assert!(L::bottom().le(a), "⊥ not least");
    }

    /// Asserts `a ⊔ b ⊑ a ∇ b` and that narrowing stays in range.
    pub fn check_widen_narrow_laws<L: Lattice + std::fmt::Debug>(a: &L, b: &L) {
        let j = a.join(b);
        let w = a.widen(b);
        assert!(j.le(&w), "join ⋢ widen: {j:?} vs {w:?}");
        let n = w.narrow(&j);
        assert!(
            j.le(&n) && n.le(&w),
            "narrow out of range: {j:?} ⊑ {n:?} ⊑ {w:?}"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A tiny two-point lattice to exercise the default methods.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum TwoPoint {
        Bot,
        Top,
    }

    impl Lattice for TwoPoint {
        fn bottom() -> Self {
            TwoPoint::Bot
        }
        fn le(&self, other: &Self) -> bool {
            matches!((self, other), (TwoPoint::Bot, _) | (_, TwoPoint::Top))
        }
        fn join(&self, other: &Self) -> Self {
            if *self == TwoPoint::Top || *other == TwoPoint::Top {
                TwoPoint::Top
            } else {
                TwoPoint::Bot
            }
        }
    }

    #[test]
    fn default_widen_is_join() {
        assert_eq!(TwoPoint::Bot.widen(&TwoPoint::Top), TwoPoint::Top);
    }

    #[test]
    fn default_narrow_keeps_self() {
        assert_eq!(TwoPoint::Top.narrow(&TwoPoint::Bot), TwoPoint::Top);
    }

    #[test]
    fn thresholds_clamp_to_nearest() {
        let th = Thresholds::new(vec![10, 0, -5, 10, 100]);
        assert_eq!(th.len(), 4);
        assert_eq!(th.clamp_hi(3), Some(10));
        assert_eq!(th.clamp_hi(10), Some(10));
        assert_eq!(th.clamp_hi(101), None);
        assert_eq!(th.clamp_lo(3), Some(0));
        assert_eq!(th.clamp_lo(-5), Some(-5));
        assert_eq!(th.clamp_lo(-6), None);
        // DBM candidates include doubles (for 2x ≤ c constraints).
        assert_eq!(th.clamp_dbm(11), Some(20));
    }

    #[test]
    fn empty_thresholds_clamp_nothing() {
        let th = Thresholds::none();
        assert!(th.is_empty());
        assert_eq!(th.clamp_hi(0), None);
        assert_eq!(th.clamp_lo(0), None);
        assert_eq!(th.clamp_dbm(0), None);
    }

    #[test]
    fn default_widen_with_ignores_thresholds() {
        let th = Thresholds::new(vec![1, 2, 3]);
        assert_eq!(TwoPoint::Bot.widen_with(&TwoPoint::Top, &th), TwoPoint::Top);
    }

    #[test]
    fn laws_hold_for_two_point() {
        for a in [TwoPoint::Bot, TwoPoint::Top] {
            for b in [TwoPoint::Bot, TwoPoint::Top] {
                for c in [TwoPoint::Bot, TwoPoint::Top] {
                    laws::check_join_laws(&a, &b, &c);
                    laws::check_widen_narrow_laws(&a, &b);
                }
            }
        }
    }
}
