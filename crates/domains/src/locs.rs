//! Abstract locations `L̂` and points-to sets `P̂ = 2^L̂` (§3.1).
//!
//! An abstract location is a program variable, a field of a variable, a
//! dynamic allocation site (abstracted by its control point, per §6.1), a
//! field of an allocation site, or a procedure (for function pointers).
//!
//! [`LocSet`] is an immutable sorted set with `Rc` sharing: points-to sets
//! are copied into every state that mentions them, so cheap clones and
//! subset-shortcut unions matter.

use crate::lattice::Lattice;
use sga_ir::{Cp, FieldId, ProcId, VarId};
use std::fmt;
// `Arc`, not `Rc`: values travel across the pipeline's worker threads
// inside shared abstract states, so the sharing pointer must be thread-safe.
use std::sync::Arc;

type Rc<T> = Arc<T>;

/// An allocation site: the control point of the `alloc` command.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct AllocSite(pub Cp);

impl fmt::Debug for AllocSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "alloc@{}", self.0)
    }
}

/// An abstract location `l ∈ L̂`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum AbsLoc {
    /// A program variable.
    Var(VarId),
    /// A field of a (struct) variable.
    Field(VarId, FieldId),
    /// Summarized contents of an allocation site.
    Alloc(AllocSite),
    /// A field of every object allocated at a site.
    AllocField(AllocSite, FieldId),
    /// A procedure, the target of a function pointer.
    Proc(ProcId),
}

impl AbsLoc {
    /// Whether the location summarizes *several* concrete cells (allocation
    /// sites do; so do address-taken variables in loops, but we keep the
    /// paper's simple site-based criterion). Summary locations only admit
    /// weak updates.
    pub fn is_summary(&self) -> bool {
        matches!(self, AbsLoc::Alloc(_) | AbsLoc::AllocField(_, _))
    }

    /// The variable this location refines, if any.
    pub fn var(&self) -> Option<VarId> {
        match self {
            AbsLoc::Var(v) | AbsLoc::Field(v, _) => Some(*v),
            _ => None,
        }
    }
}

impl fmt::Debug for AbsLoc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AbsLoc::Var(v) => write!(f, "{v}"),
            AbsLoc::Field(v, fl) => write!(f, "{v}.{fl}"),
            AbsLoc::Alloc(site) => write!(f, "{site:?}"),
            AbsLoc::AllocField(site, fl) => write!(f, "{site:?}.{fl}"),
            AbsLoc::Proc(p) => write!(f, "fn:{p}"),
        }
    }
}

/// An immutable, sorted, deduplicated set of abstract locations.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct LocSet(Rc<[AbsLoc]>);

impl LocSet {
    /// The empty set.
    pub fn empty() -> LocSet {
        LocSet(Rc::from([]))
    }

    /// A one-element set.
    pub fn singleton(l: AbsLoc) -> LocSet {
        LocSet(Rc::from([l]))
    }

    /// Number of locations.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Membership test (binary search).
    pub fn contains(&self, l: &AbsLoc) -> bool {
        self.0.binary_search(l).is_ok()
    }

    /// Iterates in ascending order.
    pub fn iter(&self) -> std::slice::Iter<'_, AbsLoc> {
        self.0.iter()
    }

    /// The single element, if the set is a singleton — the strong-update
    /// eligibility test.
    pub fn as_singleton(&self) -> Option<AbsLoc> {
        match &*self.0 {
            [l] => Some(*l),
            _ => None,
        }
    }

    /// Set union, sharing the larger side when one includes the other.
    #[must_use]
    pub fn union(&self, other: &LocSet) -> LocSet {
        if self.0.is_empty() || Rc::ptr_eq(&self.0, &other.0) {
            return other.clone();
        }
        if other.0.is_empty() {
            return self.clone();
        }
        if other.is_subset(self) {
            return self.clone();
        }
        if self.is_subset(other) {
            return other.clone();
        }
        let mut out = Vec::with_capacity(self.0.len() + other.0.len());
        let (mut i, mut j) = (0, 0);
        while i < self.0.len() && j < other.0.len() {
            match self.0[i].cmp(&other.0[j]) {
                std::cmp::Ordering::Less => {
                    out.push(self.0[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(other.0[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(self.0[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&self.0[i..]);
        out.extend_from_slice(&other.0[j..]);
        LocSet(Rc::from(out))
    }

    /// Subset test over the sorted representations.
    pub fn is_subset(&self, other: &LocSet) -> bool {
        if self.0.len() > other.0.len() {
            return false;
        }
        let mut j = 0;
        'outer: for l in self.0.iter() {
            while j < other.0.len() {
                match other.0[j].cmp(l) {
                    std::cmp::Ordering::Less => j += 1,
                    std::cmp::Ordering::Equal => {
                        j += 1;
                        continue 'outer;
                    }
                    std::cmp::Ordering::Greater => return false,
                }
            }
            return false;
        }
        true
    }
}

impl Lattice for LocSet {
    fn bottom() -> Self {
        LocSet::empty()
    }
    fn le(&self, other: &Self) -> bool {
        self.is_subset(other)
    }
    fn join(&self, other: &Self) -> Self {
        self.union(other)
    }
}

impl FromIterator<AbsLoc> for LocSet {
    fn from_iter<I: IntoIterator<Item = AbsLoc>>(iter: I) -> Self {
        let mut v: Vec<AbsLoc> = iter.into_iter().collect();
        v.sort_unstable();
        v.dedup();
        LocSet(Rc::from(v))
    }
}

impl<'a> IntoIterator for &'a LocSet {
    type Item = &'a AbsLoc;
    type IntoIter = std::slice::Iter<'a, AbsLoc>;
    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl fmt::Debug for LocSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lattice::laws;
    use proptest::prelude::*;
    use sga_utils::Idx;

    fn v(i: usize) -> AbsLoc {
        AbsLoc::Var(VarId::new(i))
    }

    #[test]
    fn union_dedups_and_sorts() {
        let a: LocSet = [v(3), v(1)].into_iter().collect();
        let b: LocSet = [v(2), v(1)].into_iter().collect();
        let u = a.union(&b);
        assert_eq!(
            u.iter().copied().collect::<Vec<_>>(),
            vec![v(1), v(2), v(3)]
        );
    }

    #[test]
    fn union_shares_on_subset() {
        let a: LocSet = [v(1), v(2), v(3)].into_iter().collect();
        let b: LocSet = [v(2)].into_iter().collect();
        let u = a.union(&b);
        assert!(Rc::ptr_eq(&u.0, &a.0), "superset side should be shared");
    }

    #[test]
    fn singleton_detection() {
        assert_eq!(LocSet::singleton(v(4)).as_singleton(), Some(v(4)));
        let two: LocSet = [v(1), v(2)].into_iter().collect();
        assert_eq!(two.as_singleton(), None);
        assert_eq!(LocSet::empty().as_singleton(), None);
    }

    #[test]
    fn summary_flags() {
        use sga_ir::{NodeId, ProcId};
        let site = AllocSite(Cp::new(ProcId::new(0), NodeId::new(5)));
        assert!(AbsLoc::Alloc(site).is_summary());
        assert!(!v(0).is_summary());
        assert!(!AbsLoc::Proc(ProcId::new(1)).is_summary());
    }

    proptest! {
        #[test]
        fn set_ops_match_btreeset(
            xs in prop::collection::btree_set(0usize..40, 0..20),
            ys in prop::collection::btree_set(0usize..40, 0..20),
        ) {
            let a: LocSet = xs.iter().map(|&i| v(i)).collect();
            let b: LocSet = ys.iter().map(|&i| v(i)).collect();
            let u = a.union(&b);
            let want: Vec<AbsLoc> = xs.union(&ys).map(|&i| v(i)).collect();
            prop_assert_eq!(u.iter().copied().collect::<Vec<_>>(), want);
            prop_assert_eq!(a.is_subset(&b), xs.is_subset(&ys));
            prop_assert_eq!(a.contains(&v(7)), xs.contains(&7));
        }

        #[test]
        fn lattice_laws(
            xs in prop::collection::btree_set(0usize..20, 0..10),
            ys in prop::collection::btree_set(0usize..20, 0..10),
            zs in prop::collection::btree_set(0usize..20, 0..10),
        ) {
            let a: LocSet = xs.iter().map(|&i| v(i)).collect();
            let b: LocSet = ys.iter().map(|&i| v(i)).collect();
            let c: LocSet = zs.iter().map(|&i| v(i)).collect();
            laws::check_join_laws(&a, &b, &c);
            laws::check_widen_narrow_laws(&a, &b);
        }
    }
}
