//! The BDD manager: reduced, ordered, hash-consed decision diagrams.
//!
//! Classic Bryant-style implementation: a node table with a unique
//! (hash-cons) map ensuring canonicity, and memoized `ite`. Terminals are
//! the constants 0 and 1. Variables are `u32` indices ordered by value —
//! choosing the variable *numbering* is choosing the variable *order*.
//!
//! # Examples
//!
//! ```
//! use sga_bdd::Bdd;
//!
//! let mut mgr = Bdd::new(4);
//! let x0 = mgr.var(0);
//! let x1 = mgr.var(1);
//! let f = mgr.and(x0, x1);
//! assert_eq!(mgr.sat_count(f), 4); // x0∧x1 over 4 vars: 2^2 models
//! let g = mgr.or(f, f);
//! assert_eq!(f, g); // hash-consing gives canonical nodes
//! ```

use sga_utils::FxHashMap;
use std::fmt;

/// A handle to a BDD node within a [`Bdd`] manager.
///
/// Handles are only meaningful with the manager that created them.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BddRef(u32);

impl BddRef {
    /// The constant-false terminal.
    pub const FALSE: BddRef = BddRef(0);
    /// The constant-true terminal.
    pub const TRUE: BddRef = BddRef(1);

    /// Whether this is one of the two terminals.
    pub fn is_terminal(self) -> bool {
        self.0 <= 1
    }
}

impl fmt::Debug for BddRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            BddRef::FALSE => write!(f, "⊥bdd"),
            BddRef::TRUE => write!(f, "⊤bdd"),
            BddRef(i) => write!(f, "bdd#{i}"),
        }
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct Node {
    var: u32,
    lo: BddRef,
    hi: BddRef,
}

/// The BDD manager owning the node table.
pub struct Bdd {
    nodes: Vec<Node>,
    unique: FxHashMap<Node, BddRef>,
    ite_cache: FxHashMap<(BddRef, BddRef, BddRef), BddRef>,
    num_vars: u32,
}

const TERMINAL_VAR: u32 = u32::MAX;

impl Bdd {
    /// Creates a manager for functions over `num_vars` variables.
    pub fn new(num_vars: u32) -> Bdd {
        // Index 0/1 are the terminals; their `var` sorts after all real vars.
        let terminals = vec![
            Node {
                var: TERMINAL_VAR,
                lo: BddRef::FALSE,
                hi: BddRef::FALSE,
            },
            Node {
                var: TERMINAL_VAR,
                lo: BddRef::TRUE,
                hi: BddRef::TRUE,
            },
        ];
        Bdd {
            nodes: terminals,
            unique: FxHashMap::default(),
            ite_cache: FxHashMap::default(),
            num_vars,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> u32 {
        self.num_vars
    }

    /// Number of live nodes in the table (including both terminals).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Estimated bytes held by the node table and caches — the store-size
    /// metric used by the BDD-vs-set ablation.
    pub fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        self.nodes.len() * size_of::<Node>()
            + self.unique.len() * (size_of::<Node>() + size_of::<BddRef>() + 8)
            + self.ite_cache.len()
                * (size_of::<(BddRef, BddRef, BddRef)>() + size_of::<BddRef>() + 8)
    }

    fn var_of(&self, r: BddRef) -> u32 {
        self.nodes[r.0 as usize].var
    }

    fn lo(&self, r: BddRef) -> BddRef {
        self.nodes[r.0 as usize].lo
    }

    fn hi(&self, r: BddRef) -> BddRef {
        self.nodes[r.0 as usize].hi
    }

    /// Finds-or-creates the canonical node `(var, lo, hi)`.
    fn mk(&mut self, var: u32, lo: BddRef, hi: BddRef) -> BddRef {
        debug_assert!(var < self.num_vars, "variable {var} out of range");
        if lo == hi {
            return lo;
        }
        let node = Node { var, lo, hi };
        if let Some(&r) = self.unique.get(&node) {
            return r;
        }
        let r = BddRef(u32::try_from(self.nodes.len()).expect("BDD node table overflow"));
        self.nodes.push(node);
        self.unique.insert(node, r);
        r
    }

    /// The function `x_var`.
    pub fn var(&mut self, var: u32) -> BddRef {
        self.mk(var, BddRef::FALSE, BddRef::TRUE)
    }

    /// The function `¬x_var`.
    pub fn nvar(&mut self, var: u32) -> BddRef {
        self.mk(var, BddRef::TRUE, BddRef::FALSE)
    }

    /// If-then-else: the canonical ternary combinator all binary ops reduce
    /// to.
    pub fn ite(&mut self, f: BddRef, g: BddRef, h: BddRef) -> BddRef {
        // Terminal cases.
        if f == BddRef::TRUE {
            return g;
        }
        if f == BddRef::FALSE {
            return h;
        }
        if g == h {
            return g;
        }
        if g == BddRef::TRUE && h == BddRef::FALSE {
            return f;
        }
        let key = (f, g, h);
        if let Some(&r) = self.ite_cache.get(&key) {
            return r;
        }
        let top = self.var_of(f).min(self.var_of(g)).min(self.var_of(h));
        let (f0, f1) = self.cofactors(f, top);
        let (g0, g1) = self.cofactors(g, top);
        let (h0, h1) = self.cofactors(h, top);
        let lo = self.ite(f0, g0, h0);
        let hi = self.ite(f1, g1, h1);
        let r = self.mk(top, lo, hi);
        self.ite_cache.insert(key, r);
        r
    }

    fn cofactors(&self, f: BddRef, var: u32) -> (BddRef, BddRef) {
        if self.var_of(f) == var {
            (self.lo(f), self.hi(f))
        } else {
            (f, f)
        }
    }

    /// Conjunction.
    pub fn and(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, g, BddRef::FALSE)
    }

    /// Disjunction.
    pub fn or(&mut self, f: BddRef, g: BddRef) -> BddRef {
        self.ite(f, BddRef::TRUE, g)
    }

    /// Negation.
    pub fn not(&mut self, f: BddRef) -> BddRef {
        self.ite(f, BddRef::FALSE, BddRef::TRUE)
    }

    /// Difference `f ∧ ¬g`.
    pub fn diff(&mut self, f: BddRef, g: BddRef) -> BddRef {
        let ng = self.not(g);
        self.and(f, ng)
    }

    /// The conjunction of literals selecting exactly `assignment` on `vars`
    /// (a *cube*); bit `i` of `assignment` gives the polarity of `vars[i]`.
    pub fn cube(&mut self, vars: &[u32], assignment: u64) -> BddRef {
        // Build bottom-up in descending variable order for linear-time mk.
        let mut sorted: Vec<(u32, bool)> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, assignment >> i & 1 == 1))
            .collect();
        sorted.sort_unstable_by_key(|e| std::cmp::Reverse(e.0));
        let mut acc = BddRef::TRUE;
        for (v, polarity) in sorted {
            acc = if polarity {
                self.mk(v, BddRef::FALSE, acc)
            } else {
                self.mk(v, acc, BddRef::FALSE)
            };
        }
        acc
    }

    /// Evaluates `f` under a full assignment (bit `v` of `assignment` is
    /// the value of variable `v`).
    pub fn eval(&self, f: BddRef, assignment: u64) -> bool {
        let mut cur = f;
        while !cur.is_terminal() {
            let v = self.var_of(cur);
            cur = if assignment >> v & 1 == 1 {
                self.hi(cur)
            } else {
                self.lo(cur)
            };
        }
        cur == BddRef::TRUE
    }

    /// Number of satisfying assignments over all `num_vars` variables
    /// (saturating at `u128::MAX`).
    pub fn sat_count(&self, f: BddRef) -> u128 {
        fn count(bdd: &Bdd, f: BddRef, memo: &mut FxHashMap<BddRef, u128>) -> u128 {
            if f == BddRef::FALSE {
                return 0;
            }
            if f == BddRef::TRUE {
                return 1;
            }
            if let Some(&c) = memo.get(&f) {
                return c;
            }
            let v = bdd.var_of(f);
            let lo_child = bdd.lo(f);
            let hi_child = bdd.hi(f);
            let child_weight = |bdd: &Bdd, child: BddRef, memo: &mut FxHashMap<BddRef, u128>| {
                let cv = if child.is_terminal() {
                    bdd.num_vars
                } else {
                    bdd.var_of(child)
                };
                let gap = cv - v - 1;
                count(bdd, child, memo).saturating_mul(2u128.saturating_pow(gap))
            };
            let total =
                child_weight(bdd, lo_child, memo).saturating_add(child_weight(bdd, hi_child, memo));
            memo.insert(f, total);
            total
        }
        let mut memo = FxHashMap::default();
        let top_gap = if f.is_terminal() {
            self.num_vars
        } else {
            self.var_of(f)
        };
        count(self, f, &mut memo).saturating_mul(2u128.saturating_pow(top_gap))
    }

    /// Number of nodes reachable from `f` (the size of *this function's*
    /// diagram, as opposed to the whole table).
    pub fn reachable_count(&self, f: BddRef) -> usize {
        let mut seen: std::collections::HashSet<BddRef> = std::collections::HashSet::new();
        let mut stack = vec![f];
        while let Some(n) = stack.pop() {
            if n.is_terminal() || !seen.insert(n) {
                continue;
            }
            stack.push(self.lo(n));
            stack.push(self.hi(n));
        }
        seen.len() + 2
    }
}

impl fmt::Debug for Bdd {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Bdd {{ vars: {}, nodes: {} }}",
            self.num_vars,
            self.nodes.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn terminals_behave() {
        let mut m = Bdd::new(2);
        assert_eq!(m.and(BddRef::TRUE, BddRef::FALSE), BddRef::FALSE);
        assert_eq!(m.or(BddRef::TRUE, BddRef::FALSE), BddRef::TRUE);
        assert_eq!(m.not(BddRef::TRUE), BddRef::FALSE);
        assert_eq!(m.sat_count(BddRef::TRUE), 4);
        assert_eq!(m.sat_count(BddRef::FALSE), 0);
    }

    #[test]
    fn canonicity_collapses_equal_functions() {
        let mut m = Bdd::new(3);
        let x0 = m.var(0);
        let x1 = m.var(1);
        // x0 ∨ x1 built two different ways.
        let a = m.or(x0, x1);
        let n0 = m.not(x0);
        let n1 = m.not(x1);
        let both_false = m.and(n0, n1);
        let b = m.not(both_false);
        assert_eq!(a, b);
    }

    #[test]
    fn cube_selects_one_assignment() {
        let mut m = Bdd::new(4);
        let c = m.cube(&[0, 2, 3], 0b101); // x0=1, x2=0, x3=1
        assert_eq!(m.sat_count(c), 2); // free var: x1
        assert!(m.eval(c, 0b1001));
        assert!(m.eval(c, 0b1011));
        assert!(!m.eval(c, 0b1101));
    }

    #[test]
    fn sat_count_handles_variable_gaps() {
        let mut m = Bdd::new(5);
        let x4 = m.var(4);
        assert_eq!(m.sat_count(x4), 16);
        let x0 = m.var(0);
        let f = m.and(x0, x4);
        assert_eq!(m.sat_count(f), 8);
    }

    #[test]
    fn diff_removes_models() {
        let mut m = Bdd::new(2);
        let x0 = m.var(0);
        let x1 = m.var(1);
        let all = m.or(x0, x1); // 3 models
        let d = m.diff(all, x1); // models with x1=0: x0=1,x1=0
        assert_eq!(m.sat_count(d), 1);
    }

    proptest! {
        #[test]
        fn ops_match_truth_tables(ops in prop::collection::vec((0u8..3, 0u32..4, 0u32..4), 1..12)) {
            // Build a random expression over 4 vars in both BDD and u16
            // truth-table form; they must agree on every assignment.
            let mut m = Bdd::new(4);
            let table_of_var = |v: u32| -> u16 {
                let mut t = 0u16;
                for a in 0..16u16 {
                    if a >> v & 1 == 1 { t |= 1 << a; }
                }
                t
            };
            let mut stack: Vec<(BddRef, u16)> = vec![(BddRef::FALSE, 0)];
            for (op, v1, v2) in ops {
                let x = (m.var(v1), table_of_var(v1));
                let y = (m.var(v2), table_of_var(v2));
                let top = *stack.last().unwrap();
                let next = match op {
                    0 => (m.and(x.0, y.0), x.1 & y.1),
                    1 => (m.or(top.0, x.0), top.1 | x.1),
                    _ => {
                        let nx = m.not(x.0);
                        (m.and(top.0, nx), top.1 & !x.1)
                    }
                };
                stack.push(next);
            }
            for (f, table) in stack {
                for a in 0..16u64 {
                    prop_assert_eq!(m.eval(f, a), table >> a & 1 == 1);
                }
                prop_assert_eq!(m.sat_count(f), u128::from(table.count_ones()));
            }
        }
    }
}
