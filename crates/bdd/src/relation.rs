//! Stores for the ternary data-dependency relation `⊆ C × C × L̂`.
//!
//! [`DepStore`] abstracts over the two representations §5 compares:
//!
//! * [`SetDepStore`] — "a naive set-based implementation, which keeps a map
//!   (⊆ C × C → 2^L̂)"; simple and fast but memory-hungry;
//! * [`BddDepStore`] — triples bit-encoded into one boolean function. The
//!   variable order is source bits, then target bits, then location bits
//!   (most significant first), so triples sharing a `(to, loc)` suffix — the
//!   many-definitions-one-use pattern that dominates real dependency
//!   relations — share BDD subgraphs. No dynamic variable reordering was
//!   necessary — same observation as the paper.

use crate::bdd::{Bdd, BddRef};
use sga_utils::{FxHashMap, FxHashSet};

/// One dependency triple: value of location `loc` flows `from → to`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DepTriple {
    /// Defining control point (dense global index).
    pub from: u32,
    /// Using control point.
    pub to: u32,
    /// The abstract location carried along the edge (dense index).
    pub loc: u32,
}

/// A store for dependency triples.
pub trait DepStore {
    /// Inserts a triple; returns `true` if it was new.
    fn insert(&mut self, t: DepTriple) -> bool;
    /// Membership test.
    fn contains(&self, t: DepTriple) -> bool;
    /// Number of triples stored.
    fn len(&self) -> usize;
    /// Whether the store is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Estimated memory footprint in bytes — the §5 comparison metric.
    fn approx_bytes(&self) -> usize;
}

/// The naive set-based store: `(from, to) → Vec<loc>`.
#[derive(Default, Debug)]
pub struct SetDepStore {
    map: FxHashMap<(u32, u32), Vec<u32>>,
    len: usize,
}

impl SetDepStore {
    /// Creates an empty store.
    pub fn new() -> SetDepStore {
        SetDepStore::default()
    }

    /// Iterates over all triples (unordered).
    pub fn iter(&self) -> impl Iterator<Item = DepTriple> + '_ {
        self.map.iter().flat_map(|(&(from, to), locs)| {
            locs.iter().map(move |&loc| DepTriple { from, to, loc })
        })
    }
}

impl DepStore for SetDepStore {
    fn insert(&mut self, t: DepTriple) -> bool {
        let locs = self.map.entry((t.from, t.to)).or_default();
        match locs.binary_search(&t.loc) {
            Ok(_) => false,
            Err(pos) => {
                locs.insert(pos, t.loc);
                self.len += 1;
                true
            }
        }
    }

    fn contains(&self, t: DepTriple) -> bool {
        self.map
            .get(&(t.from, t.to))
            .is_some_and(|locs| locs.binary_search(&t.loc).is_ok())
    }

    fn len(&self) -> usize {
        self.len
    }

    fn approx_bytes(&self) -> usize {
        use std::mem::size_of;
        // Hash-map entry overhead + key + Vec header + elements.
        self.map.len() * (size_of::<(u32, u32)>() + size_of::<Vec<u32>>() + 16)
            + self.len * size_of::<u32>()
    }
}

/// Bit-position layout for triples.
#[derive(Clone, Debug)]
struct Encoding {
    from_vars: Vec<u32>,
    to_vars: Vec<u32>,
    loc_vars: Vec<u32>,
}

impl Encoding {
    fn new(num_points: u32, num_locs: u32) -> Encoding {
        let point_bits = bits_for(num_points);
        let loc_bits = bits_for(num_locs);
        // Sequential order: from bits, then to bits, then location bits
        // (each MSB first): common (to, loc) suffixes share subgraphs.
        let from_vars: Vec<u32> = (0..point_bits).collect();
        let to_vars: Vec<u32> = (point_bits..2 * point_bits).collect();
        let base = 2 * point_bits;
        let loc_vars = (0..loc_bits).map(|b| base + b).collect();
        Encoding {
            from_vars,
            to_vars,
            loc_vars,
        }
    }

    fn num_vars(&self) -> u32 {
        (self.from_vars.len() + self.to_vars.len() + self.loc_vars.len()) as u32
    }
}

fn bits_for(n: u32) -> u32 {
    32 - n.max(1).leading_zeros()
}

/// The BDD-backed store.
pub struct BddDepStore {
    mgr: Bdd,
    root: BddRef,
    enc: Encoding,
    len: usize,
}

impl BddDepStore {
    /// Creates a store for points `< num_points` and locations `< num_locs`.
    pub fn new(num_points: u32, num_locs: u32) -> BddDepStore {
        let enc = Encoding::new(num_points, num_locs);
        let mgr = Bdd::new(enc.num_vars());
        BddDepStore {
            mgr,
            root: BddRef::FALSE,
            enc,
            len: 0,
        }
    }

    fn triple_cube(&mut self, t: DepTriple) -> BddRef {
        // Build the cube variable/polarity list: MSB-first point encodings.
        let mut vars: Vec<u32> = Vec::with_capacity(self.enc.num_vars() as usize);
        let mut bits: u64 = 0;
        let push = |vars: &mut Vec<u32>, bits: &mut u64, var: u32, bit: bool| {
            if bit {
                *bits |= 1 << vars.len();
            }
            vars.push(var);
        };
        let fb = self.enc.from_vars.len();
        for (i, &v) in self.enc.from_vars.iter().enumerate() {
            push(&mut vars, &mut bits, v, t.from >> (fb - 1 - i) & 1 == 1);
        }
        let tb = self.enc.to_vars.len();
        for (i, &v) in self.enc.to_vars.iter().enumerate() {
            push(&mut vars, &mut bits, v, t.to >> (tb - 1 - i) & 1 == 1);
        }
        let lb = self.enc.loc_vars.len();
        for (i, &v) in self.enc.loc_vars.iter().enumerate() {
            push(&mut vars, &mut bits, v, t.loc >> (lb - 1 - i) & 1 == 1);
        }
        self.mgr.cube(&vars, bits)
    }

    /// Number of BDD nodes in the underlying diagram of the relation.
    pub fn diagram_size(&self) -> usize {
        self.mgr.reachable_count(self.root)
    }
}

impl DepStore for BddDepStore {
    fn insert(&mut self, t: DepTriple) -> bool {
        let cube = self.triple_cube(t);
        let new_root = self.mgr.or(self.root, cube);
        if new_root == self.root {
            false
        } else {
            self.root = new_root;
            self.len += 1;
            true
        }
    }

    fn contains(&self, t: DepTriple) -> bool {
        // Evaluate under the assignment encoding the triple.
        let mut assignment: u64 = 0;
        let fb = self.enc.from_vars.len();
        for (i, &v) in self.enc.from_vars.iter().enumerate() {
            if t.from >> (fb - 1 - i) & 1 == 1 {
                assignment |= 1 << v;
            }
        }
        let tb = self.enc.to_vars.len();
        for (i, &v) in self.enc.to_vars.iter().enumerate() {
            if t.to >> (tb - 1 - i) & 1 == 1 {
                assignment |= 1 << v;
            }
        }
        let lb = self.enc.loc_vars.len();
        for (i, &v) in self.enc.loc_vars.iter().enumerate() {
            if t.loc >> (lb - 1 - i) & 1 == 1 {
                assignment |= 1 << v;
            }
        }
        self.mgr.eval(self.root, assignment)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn approx_bytes(&self) -> usize {
        // Memory a garbage-collected implementation (like BuDDy) retains:
        // the reachable diagram plus unique-table overhead per live node.
        self.diagram_size() * (std::mem::size_of::<u32>() * 3 + 16)
    }
}

impl std::fmt::Debug for BddDepStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BddDepStore {{ triples: {}, diagram nodes: {} }}",
            self.len,
            self.diagram_size()
        )
    }
}

/// Verifies two stores agree on a triple universe sample (test helper).
#[doc(hidden)]
pub fn stores_agree(
    a: &impl DepStore,
    b: &impl DepStore,
    universe: impl Iterator<Item = DepTriple>,
) -> bool {
    let mut ok = true;
    for t in universe {
        ok &= a.contains(t) == b.contains(t);
    }
    ok && a.len() == b.len()
}

/// Deduplicating convenience used by tests and the ablation harness.
pub fn fill_both(triples: &[DepTriple], set: &mut SetDepStore, bdd: &mut BddDepStore) -> usize {
    let mut seen: FxHashSet<DepTriple> = FxHashSet::default();
    let mut fresh = 0;
    for &t in triples {
        if seen.insert(t) {
            fresh += 1;
        }
        let a = set.insert(t);
        let b = bdd.insert(t);
        assert_eq!(a, b, "stores disagree on freshness of {t:?}");
    }
    fresh
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn set_store_basics() {
        let mut s = SetDepStore::new();
        let t = DepTriple {
            from: 1,
            to: 2,
            loc: 3,
        };
        assert!(s.insert(t));
        assert!(!s.insert(t));
        assert!(s.contains(t));
        assert!(!s.contains(DepTriple {
            from: 1,
            to: 2,
            loc: 4
        }));
        assert_eq!(s.len(), 1);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![t]);
    }

    #[test]
    fn bdd_store_basics() {
        let mut s = BddDepStore::new(16, 8);
        let t = DepTriple {
            from: 5,
            to: 11,
            loc: 7,
        };
        assert!(!s.contains(t));
        assert!(s.insert(t));
        assert!(!s.insert(t));
        assert!(s.contains(t));
        assert!(!s.contains(DepTriple {
            from: 5,
            to: 11,
            loc: 6
        }));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn bdd_shares_structure_on_redundant_relations() {
        // Many sources defining the same (to, loc): suffix sharing should
        // keep the diagram far smaller than the triple count.
        let mut s = BddDepStore::new(1024, 64);
        for from in 0..512 {
            s.insert(DepTriple {
                from,
                to: 700,
                loc: 3,
            });
        }
        assert_eq!(s.len(), 512);
        assert!(
            s.diagram_size() < 64,
            "expected heavy sharing, got {} nodes",
            s.diagram_size()
        );
    }

    proptest! {
        #[test]
        fn stores_agree_on_random_relations(
            triples in prop::collection::vec((0u32..32, 0u32..32, 0u32..16), 0..200)
        ) {
            let triples: Vec<DepTriple> =
                triples.into_iter().map(|(from, to, loc)| DepTriple { from, to, loc }).collect();
            let mut set = SetDepStore::new();
            let mut bdd = BddDepStore::new(32, 16);
            let fresh = fill_both(&triples, &mut set, &mut bdd);
            prop_assert_eq!(set.len(), fresh);
            prop_assert_eq!(bdd.len(), fresh);
            let universe = (0..32u32).flat_map(|f|
                (0..32u32).flat_map(move |t| (0..16u32).map(move |l|
                    DepTriple { from: f, to: t, loc: l })));
            prop_assert!(stores_agree(&set, &bdd, universe));
        }
    }
}
