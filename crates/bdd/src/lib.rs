//! A from-scratch binary decision diagram (BDD) package, plus the
//! BDD-encoded dependency-relation store of §5.
//!
//! The paper stores the data-dependency relation `⊆ C × C × L̂` in BDDs
//! (using BuDDy): "we treat each relation ⟨c₁, c₂, l⟩, by bit-encoding each
//! control point and abstract location, as a boolean function". For vim60
//! the set-based store needed > 24 GB where the BDD store needed 1 GB,
//! because the relation is highly redundant — common prefixes and suffixes
//! of triples share BDD nodes.
//!
//! * [`bdd`] — the manager: hash-consed nodes, `ite`-based apply, restrict,
//!   model counting.
//! * [`relation`] — the ternary-relation stores: [`BddDepStore`]
//!   (bit-encoded triples) and [`SetDepStore`] (the naive set
//!   representation the paper compares against), behind one trait so the
//!   ablation harness can swap them.

pub mod bdd;
pub mod relation;

pub use bdd::{Bdd, BddRef};
pub use relation::{BddDepStore, DepStore, SetDepStore};
