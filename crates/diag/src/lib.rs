//! Structured analysis diagnostics.
//!
//! The checkers of `sga-core` report their findings as [`Diagnostic`]
//! values: a kind, the control point and source line, the involved
//! variable, rendered evidence, a definite/possible split, and a **stable
//! content fingerprint**. The fingerprint identifies a finding across runs
//! — it survives reordering of unrelated code and edits elsewhere in the
//! file, because it hashes only the *content* of the finding (kind,
//! procedure name, subject name and the finding's ordinal among its
//! peers), never absolute control points or line numbers.
//!
//! A diagnostic starts [`Status::Open`] and may be demoted to
//! [`Status::Discharged`] by a triage pass (`sga_core::triage`): the
//! octagon layer refutes the error condition relationally, the
//! path-condition layer proves the alarm point unreachable from its
//! dominating guards ([`DischargeMethod`]). A discharge always records
//! the proving pack and the constraint that proved the alarm impossible —
//! absence of evidence is never a discharge.
//!
//! Submodules: [`sarif`] (SARIF 2.1.0 emission), [`schema`] (an offline
//! JSON-Schema checker for the vendored SARIF schema), [`baseline`]
//! (run-over-run fingerprint diffing).

pub mod baseline;
pub mod sarif;
pub mod schema;

use sga_ir::{Cp, NodeId, ProcId, VarId};
use sga_utils::{fxhash, Idx, Json};
use std::fmt;

/// What a diagnostic reports.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DiagKind {
    /// An array access whose offset may exceed the block's size.
    BufferOverrun,
    /// A dereference of a pointer whose value set may contain null.
    NullDeref,
    /// A division or modulo whose divisor may be zero.
    DivByZero,
    /// A read of a local variable no execution path initializes.
    UninitRead,
}

impl DiagKind {
    /// Every kind, in report order.
    pub const ALL: [DiagKind; 4] = [
        DiagKind::BufferOverrun,
        DiagKind::NullDeref,
        DiagKind::DivByZero,
        DiagKind::UninitRead,
    ];

    /// The stable rule identifier (also the SARIF `ruleId`).
    pub fn id(self) -> &'static str {
        match self {
            DiagKind::BufferOverrun => "buffer-overrun",
            DiagKind::NullDeref => "null-deref",
            DiagKind::DivByZero => "div-by-zero",
            DiagKind::UninitRead => "uninit-read",
        }
    }

    /// Parses a rule identifier.
    pub fn from_id(id: &str) -> Option<DiagKind> {
        DiagKind::ALL.into_iter().find(|k| k.id() == id)
    }

    /// Human phrase used in rendered messages.
    pub fn phrase(self) -> &'static str {
        match self {
            DiagKind::BufferOverrun => "buffer overrun",
            DiagKind::NullDeref => "null dereference",
            DiagKind::DivByZero => "division by zero",
            DiagKind::UninitRead => "read of uninitialized variable",
        }
    }
}

/// Kind-specific rendered evidence. The payloads are pre-rendered by the
/// checker (interval strings, block names) so the diagnostic round-trips
/// through JSON byte-identically.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Evidence {
    /// Offset/size intervals of the accessed block.
    Overrun {
        /// The access offset interval.
        offset: String,
        /// The block's size interval.
        size: String,
        /// The accessed abstract block (rendered).
        block: String,
        /// The allocation site `(proc, node)` when the block is a
        /// `malloc`-style allocation — what triage re-examines.
        alloc: Option<(u32, u32)>,
    },
    /// The pointer's numeric interval (contains 0).
    Null {
        /// Rendered interval of the pointer value.
        value: String,
    },
    /// The divisor's interval (contains 0).
    DivByZero {
        /// Rendered interval of the divisor.
        divisor: String,
        /// Which divisor within the command (commands can divide twice).
        nth: u32,
    },
    /// A read of a never-initialized local; the variable is the
    /// diagnostic's subject.
    Uninit,
}

impl Evidence {
    fn render(&self) -> String {
        match self {
            Evidence::Overrun {
                offset,
                size,
                block,
                ..
            } => format!("offset {offset} vs size {size} of {block}"),
            Evidence::Null { value } => format!("pointer value {value}"),
            Evidence::DivByZero { divisor, .. } => format!("divisor {divisor}"),
            Evidence::Uninit => "no path assigns it before this read".to_string(),
        }
    }
}

/// Which triage layer proved an alarm impossible.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DischargeMethod {
    /// The packed octagon pass: a relational constraint refuted the error
    /// condition.
    Octagon,
    /// The path-condition pass: the conjunction of dominating `assume`
    /// guards is infeasible, so the alarm point is unreachable.
    PathInfeasible,
}

impl DischargeMethod {
    /// Stable identifier used in report/cache JSON and SARIF.
    pub fn id(self) -> &'static str {
        match self {
            DischargeMethod::Octagon => "octagon",
            DischargeMethod::PathInfeasible => "path_infeasible",
        }
    }

    /// Parses a method identifier.
    pub fn from_id(id: &str) -> Option<DischargeMethod> {
        match id {
            "octagon" => Some(DischargeMethod::Octagon),
            "path_infeasible" => Some(DischargeMethod::PathInfeasible),
            _ => None,
        }
    }
}

/// Whether the alarm stands or was refuted by triage.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Status {
    /// The alarm stands.
    Open,
    /// A triage pass proved the alarm impossible; the proving pack and the
    /// refuting constraint are recorded.
    Discharged {
        /// Which triage layer discharged the alarm.
        method: DischargeMethod,
        /// The proving pack: the rendered member list of the octagon pack,
        /// or the rendered dominating guard chain (with polarities) for a
        /// path discharge.
        pack: String,
        /// The refuting constraint or infeasibility fact, rendered.
        reason: String,
    },
}

/// SARIF-style severity, derived from the definite flag and status.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Severity {
    /// Open and definite: the abstract semantics guarantees the error.
    Error,
    /// Open and possible.
    Warning,
    /// Discharged.
    Note,
}

/// One structured finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// What is reported.
    pub kind: DiagKind,
    /// The control point of the offending command.
    pub cp: Cp,
    /// Source line of the command.
    pub line: u32,
    /// Name of the enclosing procedure.
    pub proc_name: String,
    /// The involved variable, when the subject is a single variable (the
    /// dereferenced pointer, the uninitialized local, a variable divisor).
    pub var: Option<VarId>,
    /// Stable rendering of the subject: the variable's source name, or the
    /// rendered divisor expression. Feeds the fingerprint.
    pub subject: String,
    /// Whether the abstract semantics *guarantees* the error (`true`) or
    /// merely fails to exclude it.
    pub definite: bool,
    /// Kind-specific evidence.
    pub evidence: Evidence,
    /// Open or discharged.
    pub status: Status,
    /// Stable content fingerprint (see [`assign_fingerprints`]).
    pub fingerprint: u64,
}

impl Diagnostic {
    /// Builds an open diagnostic with a zero fingerprint (assigned later by
    /// [`assign_fingerprints`]).
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        kind: DiagKind,
        cp: Cp,
        line: u32,
        proc_name: impl Into<String>,
        var: Option<VarId>,
        subject: impl Into<String>,
        definite: bool,
        evidence: Evidence,
    ) -> Diagnostic {
        Diagnostic {
            kind,
            cp,
            line,
            proc_name: proc_name.into(),
            var,
            subject: subject.into(),
            definite,
            evidence,
            status: Status::Open,
            fingerprint: 0,
        }
    }

    /// Whether the alarm still stands.
    pub fn is_open(&self) -> bool {
        matches!(self.status, Status::Open)
    }

    /// Derived severity.
    pub fn severity(&self) -> Severity {
        match (&self.status, self.definite) {
            (Status::Discharged { .. }, _) => Severity::Note,
            (Status::Open, true) => Severity::Error,
            (Status::Open, false) => Severity::Warning,
        }
    }

    /// Serializes to the deterministic report/cache JSON shape.
    pub fn to_json(&self) -> Json {
        let mut j = Json::obj()
            .with("kind", self.kind.id())
            .with(
                "cp",
                Json::Arr(vec![
                    Json::Num(self.cp.proc.index() as f64),
                    Json::Num(self.cp.node.index() as f64),
                ]),
            )
            .with("line", self.line)
            .with("proc", self.proc_name.as_str())
            .with(
                "var",
                match self.var {
                    Some(v) => Json::Num(v.index() as f64),
                    None => Json::Null,
                },
            )
            .with("subject", self.subject.as_str())
            .with("definite", self.definite);
        let evidence = match &self.evidence {
            Evidence::Overrun {
                offset,
                size,
                block,
                alloc,
            } => Json::obj()
                .with("offset", offset.as_str())
                .with("size", size.as_str())
                .with("block", block.as_str())
                .with(
                    "alloc",
                    match alloc {
                        Some((p, n)) => {
                            Json::Arr(vec![Json::Num(f64::from(*p)), Json::Num(f64::from(*n))])
                        }
                        None => Json::Null,
                    },
                ),
            Evidence::Null { value } => Json::obj().with("value", value.as_str()),
            Evidence::DivByZero { divisor, nth } => Json::obj()
                .with("divisor", divisor.as_str())
                .with("nth", *nth),
            Evidence::Uninit => Json::obj(),
        };
        j.set("evidence", evidence);
        match &self.status {
            Status::Open => {
                j.set("status", "open");
            }
            Status::Discharged {
                method,
                pack,
                reason,
            } => {
                j.set("status", "discharged");
                j.set(
                    "discharge",
                    Json::obj()
                        .with("method", method.id())
                        .with("pack", pack.as_str())
                        .with("reason", reason.as_str()),
                );
            }
        }
        j.set("fingerprint", format!("{:016x}", self.fingerprint));
        j
    }

    /// Parses the shape written by [`Diagnostic::to_json`].
    pub fn from_json(j: &Json) -> Option<Diagnostic> {
        let kind = DiagKind::from_id(j.get("kind")?.as_str()?)?;
        let cp_arr = j.get("cp")?.as_arr()?;
        let cp = Cp::new(
            ProcId::new(cp_arr.first()?.as_u64()? as usize),
            NodeId::new(cp_arr.get(1)?.as_u64()? as usize),
        );
        let line = j.get("line")?.as_u64()? as u32;
        let proc_name = j.get("proc")?.as_str()?.to_string();
        let var = match j.get("var")? {
            Json::Null => None,
            v => Some(VarId::new(v.as_u64()? as usize)),
        };
        let subject = j.get("subject")?.as_str()?.to_string();
        let definite = j.get("definite")?.as_bool()?;
        let ev = j.get("evidence")?;
        let evidence = match kind {
            DiagKind::BufferOverrun => Evidence::Overrun {
                offset: ev.get("offset")?.as_str()?.to_string(),
                size: ev.get("size")?.as_str()?.to_string(),
                block: ev.get("block")?.as_str()?.to_string(),
                alloc: match ev.get("alloc")? {
                    Json::Null => None,
                    a => {
                        let a = a.as_arr()?;
                        Some((a.first()?.as_u64()? as u32, a.get(1)?.as_u64()? as u32))
                    }
                },
            },
            DiagKind::NullDeref => Evidence::Null {
                value: ev.get("value")?.as_str()?.to_string(),
            },
            DiagKind::DivByZero => Evidence::DivByZero {
                divisor: ev.get("divisor")?.as_str()?.to_string(),
                nth: ev.get("nth")?.as_u64()? as u32,
            },
            DiagKind::UninitRead => Evidence::Uninit,
        };
        let status = match j.get("status")?.as_str()? {
            "open" => Status::Open,
            "discharged" => {
                let d = j.get("discharge")?;
                // Records written before the method field existed are all
                // octagon discharges.
                let method = match d.get("method") {
                    Some(m) => DischargeMethod::from_id(m.as_str()?)?,
                    None => DischargeMethod::Octagon,
                };
                Status::Discharged {
                    method,
                    pack: d.get("pack")?.as_str()?.to_string(),
                    reason: d.get("reason")?.as_str()?.to_string(),
                }
            }
            _ => return None,
        };
        let fingerprint = u64::from_str_radix(j.get("fingerprint")?.as_str()?, 16).ok()?;
        Some(Diagnostic {
            kind,
            cp,
            line,
            proc_name,
            var,
            subject,
            definite,
            evidence,
            status,
            fingerprint,
        })
    }
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let certainty = if self.definite {
            "definite"
        } else {
            "possible"
        };
        match self.kind {
            DiagKind::UninitRead => write!(
                f,
                "line {}: {certainty} {} `{}` in {} at {} ({})",
                self.line,
                self.kind.phrase(),
                self.subject,
                self.proc_name,
                self.cp,
                self.evidence.render(),
            )?,
            _ => write!(
                f,
                "line {}: {certainty} {} in {} at {}: `{}` ({})",
                self.line,
                self.kind.phrase(),
                self.proc_name,
                self.cp,
                self.subject,
                self.evidence.render(),
            )?,
        }
        match &self.status {
            Status::Discharged {
                method: DischargeMethod::Octagon,
                pack,
                reason,
            } => write!(f, " — discharged by pack {pack}: {reason}")?,
            Status::Discharged {
                method: DischargeMethod::PathInfeasible,
                pack,
                reason,
            } => write!(f, " — discharged by infeasible path {pack}: {reason}")?,
            Status::Open => {}
        }
        Ok(())
    }
}

/// Sorts diagnostics into the canonical report order: by control point,
/// then kind, then subject, then evidence detail. The order depends only
/// on program content, never on checker scheduling.
pub fn sort_canonical(diags: &mut [Diagnostic]) {
    diags.sort_by(|a, b| {
        (a.cp, a.kind, &a.subject, &a.evidence.render()).cmp(&(
            b.cp,
            b.kind,
            &b.subject,
            &b.evidence.render(),
        ))
    });
}

/// Assigns the stable content fingerprint to every diagnostic.
///
/// The recipe (documented in DESIGN.md §10): hash of
/// `("sga-diag-v1", kind id, procedure name, subject, ordinal)` where the
/// ordinal is the diagnostic's occurrence index within its
/// `(kind, procedure, subject)` group, counted in canonical order.
/// Absolute line numbers, control points and interval evidence are
/// deliberately excluded, so the fingerprint survives reordering and
/// unrelated edits; the ordinal keeps multiple same-subject findings in
/// one procedure distinct.
///
/// The input must already be in canonical order (see [`sort_canonical`]).
pub fn assign_fingerprints(diags: &mut [Diagnostic]) {
    let mut seen: Vec<(DiagKind, String, String, u32)> = Vec::new();
    for d in diags.iter_mut() {
        let ordinal = match seen
            .iter_mut()
            .find(|(k, p, s, _)| *k == d.kind && *p == d.proc_name && *s == d.subject)
        {
            Some(entry) => {
                entry.3 += 1;
                entry.3
            }
            None => {
                seen.push((d.kind, d.proc_name.clone(), d.subject.clone(), 0));
                0
            }
        };
        d.fingerprint = fxhash::hash_one(&(
            "sga-diag-v1",
            d.kind.id(),
            d.proc_name.as_str(),
            d.subject.as_str(),
            ordinal,
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample(kind: DiagKind, line: u32, subject: &str) -> Diagnostic {
        let evidence = match kind {
            DiagKind::BufferOverrun => Evidence::Overrun {
                offset: "[0,+oo]".into(),
                size: "[1,1]".into(),
                block: "alloc@p0:2".into(),
                alloc: Some((0, 2)),
            },
            DiagKind::NullDeref => Evidence::Null {
                value: "[0,0]".into(),
            },
            DiagKind::DivByZero => Evidence::DivByZero {
                divisor: "[-oo,+oo]".into(),
                nth: 0,
            },
            DiagKind::UninitRead => Evidence::Uninit,
        };
        Diagnostic::new(
            kind,
            Cp::new(ProcId::new(0), NodeId::new(line as usize)),
            line,
            "main",
            None,
            subject,
            false,
            evidence,
        )
    }

    #[test]
    fn json_round_trip_is_identity() {
        for kind in DiagKind::ALL {
            let mut d = sample(kind, 7, "p");
            d.definite = kind == DiagKind::UninitRead;
            if kind == DiagKind::NullDeref {
                d.status = Status::Discharged {
                    method: DischargeMethod::Octagon,
                    pack: "{p,n}".into(),
                    reason: "p >= 1".into(),
                };
            }
            if kind == DiagKind::DivByZero {
                d.status = Status::Discharged {
                    method: DischargeMethod::PathInfeasible,
                    pack: "then@3(n > 0) & else@5(n <= 0)".into(),
                    reason: "guards conflict: n in [1,+oo] refines to empty".into(),
                };
            }
            d.fingerprint = 0xdead_beef_0bad_f00d;
            let j = d.to_json();
            let back = Diagnostic::from_json(&j).expect("parses");
            assert_eq!(back, d);
            // And byte-identical serialization.
            assert_eq!(back.to_json().to_compact(), j.to_compact());
        }
    }

    #[test]
    fn fingerprint_ignores_lines_but_not_content() {
        let mut a = vec![sample(DiagKind::NullDeref, 3, "p")];
        let mut b = vec![sample(DiagKind::NullDeref, 90, "p")];
        assign_fingerprints(&mut a);
        assign_fingerprints(&mut b);
        assert_eq!(
            a[0].fingerprint, b[0].fingerprint,
            "moving a finding keeps its identity"
        );

        let mut c = vec![sample(DiagKind::NullDeref, 3, "q")];
        assign_fingerprints(&mut c);
        assert_ne!(a[0].fingerprint, c[0].fingerprint, "subject matters");

        let mut d = vec![sample(DiagKind::DivByZero, 3, "p")];
        assign_fingerprints(&mut d);
        assert_ne!(a[0].fingerprint, d[0].fingerprint, "kind matters");
    }

    #[test]
    fn repeated_findings_get_distinct_ordinals() {
        let mut v = vec![
            sample(DiagKind::NullDeref, 3, "p"),
            sample(DiagKind::NullDeref, 5, "p"),
        ];
        assign_fingerprints(&mut v);
        assert_ne!(v[0].fingerprint, v[1].fingerprint);

        // Inserting an unrelated finding between them changes neither.
        let mut w = vec![
            sample(DiagKind::NullDeref, 3, "p"),
            sample(DiagKind::DivByZero, 4, "d"),
            sample(DiagKind::NullDeref, 9, "p"),
        ];
        assign_fingerprints(&mut w);
        assert_eq!(v[0].fingerprint, w[0].fingerprint);
        assert_eq!(v[1].fingerprint, w[2].fingerprint);
    }

    #[test]
    fn severity_tracks_status_and_definiteness() {
        let mut d = sample(DiagKind::BufferOverrun, 1, "buf");
        assert_eq!(d.severity(), Severity::Warning);
        d.definite = true;
        assert_eq!(d.severity(), Severity::Error);
        d.definite = false;
        d.status = Status::Discharged {
            method: DischargeMethod::Octagon,
            pack: "{i,n}".into(),
            reason: "i - n <= -1".into(),
        };
        assert_eq!(d.severity(), Severity::Note);
    }

    #[test]
    fn missing_method_parses_as_octagon() {
        let mut d = sample(DiagKind::NullDeref, 4, "p");
        d.status = Status::Discharged {
            method: DischargeMethod::Octagon,
            pack: "{p}".into(),
            reason: "p >= 1".into(),
        };
        let mut j = d.to_json();
        // Simulate a pre-method record: strip the field.
        let discharge = Json::obj().with("pack", "{p}").with("reason", "p >= 1");
        j.set("discharge", discharge);
        let back = Diagnostic::from_json(&j).expect("parses");
        assert_eq!(back.status, d.status);
    }
}
