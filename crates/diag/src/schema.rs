//! An offline JSON-Schema checker, sized for the vendored SARIF schema.
//!
//! The build environment has no network and no external schema-validation
//! dependency, so CI validates emitted SARIF against the vendored
//! `schema/sarif-2.1.0.json` with this checker. It implements the
//! draft-04 subset that schema actually uses:
//!
//! * `type` (single name or list),
//! * `enum` (scalar values),
//! * `required`, `properties` (objects),
//! * `items` (single schema), `minItems`,
//! * `minimum` (numbers),
//! * `$ref` into `#/definitions/...`.
//!
//! Unknown keywords are ignored, which is exactly the permissive behavior
//! draft-04 prescribes. That makes the checker sound for rejection — any
//! reported violation is a real one — while staying small.

use sga_utils::Json;

/// The vendored SARIF 2.1.0 schema (reduced to the properties the emitter
/// produces; constraints are copied from the official schema).
pub fn vendored_sarif_schema() -> Json {
    Json::parse(include_str!("../schema/sarif-2.1.0.json")).expect("vendored SARIF schema parses")
}

/// Validates `instance` against `schema`. Returns human-readable
/// violations; empty means valid.
pub fn validate(instance: &Json, schema: &Json) -> Vec<String> {
    let mut errors = Vec::new();
    check(instance, schema, schema, "$", &mut errors);
    errors
}

fn type_name(j: &Json) -> &'static str {
    match j {
        Json::Null => "null",
        Json::Bool(_) => "boolean",
        Json::Num(n) => {
            if n.fract() == 0.0 {
                "integer"
            } else {
                "number"
            }
        }
        Json::Str(_) => "string",
        Json::Arr(_) => "array",
        Json::Obj(_) => "object",
    }
}

fn type_matches(instance: &Json, want: &str) -> bool {
    let got = type_name(instance);
    got == want || (want == "number" && got == "integer")
}

fn resolve<'a>(root: &'a Json, reference: &str) -> Option<&'a Json> {
    let path = reference.strip_prefix("#/")?;
    let mut cur = root;
    for seg in path.split('/') {
        cur = cur.get(seg)?;
    }
    Some(cur)
}

fn check(instance: &Json, schema: &Json, root: &Json, path: &str, errors: &mut Vec<String>) {
    if let Some(reference) = schema.get("$ref").and_then(Json::as_str) {
        match resolve(root, reference) {
            Some(target) => check(instance, target, root, path, errors),
            None => errors.push(format!("{path}: unresolvable $ref {reference}")),
        }
        return;
    }

    if let Some(ty) = schema.get("type") {
        let names: Vec<&str> = match ty {
            Json::Str(s) => vec![s.as_str()],
            Json::Arr(list) => list.iter().filter_map(Json::as_str).collect(),
            _ => Vec::new(),
        };
        if !names.is_empty() && !names.iter().any(|n| type_matches(instance, n)) {
            errors.push(format!(
                "{path}: expected type {}, got {}",
                names.join("|"),
                type_name(instance)
            ));
            return;
        }
    }

    if let Some(allowed) = schema.get("enum").and_then(Json::as_arr) {
        if !allowed.contains(instance) {
            errors.push(format!("{path}: value not in enum"));
        }
    }

    if let Some(min) = schema.get("minimum").and_then(Json::as_f64) {
        if let Some(n) = instance.as_f64() {
            if n < min {
                errors.push(format!("{path}: {n} below minimum {min}"));
            }
        }
    }

    if let Json::Obj(_) = instance {
        if let Some(required) = schema.get("required").and_then(Json::as_arr) {
            for key in required.iter().filter_map(Json::as_str) {
                if instance.get(key).is_none() {
                    errors.push(format!("{path}: missing required property `{key}`"));
                }
            }
        }
        if let Some(Json::Obj(props)) = schema.get("properties") {
            for (key, sub) in props {
                if let Some(value) = instance.get(key) {
                    check(value, sub, root, &format!("{path}.{key}"), errors);
                }
            }
        }
    }

    if let Json::Arr(items) = instance {
        if let Some(min) = schema.get("minItems").and_then(Json::as_u64) {
            if (items.len() as u64) < min {
                errors.push(format!(
                    "{path}: {} items, fewer than minItems {min}",
                    items.len()
                ));
            }
        }
        if let Some(item_schema) = schema.get("items") {
            for (i, item) in items.iter().enumerate() {
                check(item, item_schema, root, &format!("{path}[{i}]"), errors);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema() -> Json {
        Json::parse(
            r##"{
              "type": "object",
              "required": ["version", "runs"],
              "properties": {
                "version": {"enum": ["2.1.0"]},
                "runs": {"type": "array", "minItems": 1,
                         "items": {"$ref": "#/definitions/run"}}
              },
              "definitions": {
                "run": {"type": "object", "required": ["tool"],
                        "properties": {"tool": {"type": "object"},
                                       "n": {"type": "integer", "minimum": 1}}}
              }
            }"##,
        )
        .unwrap()
    }

    #[test]
    fn accepts_conforming_instance() {
        let doc = Json::parse(r#"{"version":"2.1.0","runs":[{"tool":{},"n":3}]}"#).unwrap();
        assert!(validate(&doc, &schema()).is_empty());
    }

    #[test]
    fn reports_missing_required_and_bad_enum() {
        let doc = Json::parse(r#"{"version":"2.0.0"}"#).unwrap();
        let errors = validate(&doc, &schema());
        assert!(errors.iter().any(|e| e.contains("enum")), "{errors:?}");
        assert!(errors.iter().any(|e| e.contains("runs")), "{errors:?}");
    }

    #[test]
    fn follows_refs_and_checks_items() {
        let doc = Json::parse(r#"{"version":"2.1.0","runs":[{"n":0}]}"#).unwrap();
        let errors = validate(&doc, &schema());
        assert!(
            errors.iter().any(|e| e.contains("tool")),
            "missing tool through $ref: {errors:?}"
        );
        assert!(
            errors.iter().any(|e| e.contains("minimum")),
            "minimum through $ref: {errors:?}"
        );
    }

    #[test]
    fn type_mismatch_is_reported() {
        let doc = Json::parse(r#"{"version":"2.1.0","runs":"nope"}"#).unwrap();
        let errors = validate(&doc, &schema());
        assert!(errors.iter().any(|e| e.contains("expected type array")));
    }

    #[test]
    fn vendored_schema_parses() {
        let s = vendored_sarif_schema();
        assert!(s.get("definitions").is_some());
    }
}
