//! Run-over-run baseline diffing.
//!
//! `sga analyze --baseline old-report.json` classifies every diagnostic of
//! the current run against a previous report **by fingerprint**: a
//! fingerprint present in both runs is `unchanged`, one only in the
//! current run is `new`, one only in the baseline is `fixed`. Fingerprints
//! are compared as multisets, so two same-subject findings in one
//! procedure are matched pairwise, not collapsed.

use crate::Diagnostic;
use sga_utils::FxHashMap;

/// Summary of a baseline comparison.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BaselineDiff {
    /// Fingerprints present now but not in the baseline.
    pub new: Vec<u64>,
    /// Fingerprints present in the baseline but gone now.
    pub fixed: Vec<u64>,
    /// Count of fingerprints present in both.
    pub unchanged: usize,
    /// How many of the `new` findings are open and definite — the CI
    /// gate's failure condition.
    pub new_definite: usize,
}

/// Classification of one current diagnostic.
pub const NEW: &str = "new";
/// Classification of a diagnostic matched in the baseline.
pub const UNCHANGED: &str = "unchanged";

/// Compares the current run's `(fingerprint, open-and-definite)` pairs
/// against the baseline's fingerprints. Returns the per-diagnostic
/// classification (aligned with `current`) plus the summary.
pub fn classify(current: &[(u64, bool)], baseline: &[u64]) -> (Vec<&'static str>, BaselineDiff) {
    let mut remaining: FxHashMap<u64, usize> = FxHashMap::default();
    for &fp in baseline {
        *remaining.entry(fp).or_insert(0) += 1;
    }
    let mut classes = Vec::with_capacity(current.len());
    let mut diff = BaselineDiff::default();
    for &(fp, definite) in current {
        match remaining.get_mut(&fp) {
            Some(n) if *n > 0 => {
                *n -= 1;
                diff.unchanged += 1;
                classes.push(UNCHANGED);
            }
            _ => {
                diff.new.push(fp);
                if definite {
                    diff.new_definite += 1;
                }
                classes.push(NEW);
            }
        }
    }
    let mut fixed: Vec<u64> = remaining
        .into_iter()
        .flat_map(|(fp, n)| std::iter::repeat_n(fp, n))
        .collect();
    fixed.sort_unstable();
    diff.fixed = fixed;
    diff.new.sort_unstable();
    (classes, diff)
}

/// Pure run-over-run diff of two diagnostic sets: the current run's *open*
/// diagnostics classified against the baseline's *open* fingerprints
/// (multiset match, like [`classify`]). Discharged diagnostics never
/// participate on either side — an alarm the octagon proved impossible is
/// not an outstanding finding in either run. This is the set-level
/// primitive behind both `--baseline` report annotation and the
/// incremental daemon's streamed alarm diffs.
pub fn diff_open<'a, 'b>(
    current: impl IntoIterator<Item = &'a Diagnostic>,
    baseline: impl IntoIterator<Item = &'b Diagnostic>,
) -> BaselineDiff {
    let cur: Vec<(u64, bool)> = current
        .into_iter()
        .filter(|d| d.is_open())
        .map(|d| (d.fingerprint, d.definite))
        .collect();
    let base: Vec<u64> = baseline
        .into_iter()
        .filter(|d| d.is_open())
        .map(|d| d.fingerprint)
        .collect();
    classify(&cur, &base).1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiagKind, DischargeMethod, Evidence, Status};
    use sga_ir::{Cp, NodeId, ProcId};
    use sga_utils::Idx;

    #[test]
    fn self_diff_is_all_unchanged() {
        let cur = [(1u64, true), (2, false), (2, false)];
        let base = [1u64, 2, 2];
        let (classes, diff) = classify(&cur, &base);
        assert_eq!(classes, vec![UNCHANGED; 3]);
        assert_eq!(diff.unchanged, 3);
        assert!(diff.new.is_empty() && diff.fixed.is_empty());
        assert_eq!(diff.new_definite, 0);
    }

    #[test]
    fn multiset_matching_pairs_duplicates() {
        // Two copies now, one before: exactly one is new.
        let (classes, diff) = classify(&[(7, false), (7, true)], &[7]);
        assert_eq!(classes, vec![UNCHANGED, NEW]);
        assert_eq!(diff.new, vec![7]);
        assert_eq!(diff.new_definite, 1);
    }

    #[test]
    fn fixed_are_the_leftovers() {
        let (_, diff) = classify(&[(1, false)], &[1, 2, 2]);
        assert_eq!(diff.fixed, vec![2, 2]);
        assert_eq!(diff.unchanged, 1);
    }

    #[test]
    fn new_definite_counts_only_definite() {
        let (_, diff) = classify(&[(3, false), (4, true)], &[]);
        assert_eq!(diff.new.len(), 2);
        assert_eq!(diff.new_definite, 1);
    }

    /// A minimal diagnostic with the given fingerprint/definite/status.
    fn diag(fingerprint: u64, definite: bool, open: bool) -> Diagnostic {
        let mut d = Diagnostic::new(
            DiagKind::DivByZero,
            Cp::new(ProcId::new(0), NodeId::new(0)),
            1,
            "f",
            None,
            "x",
            definite,
            Evidence::DivByZero {
                divisor: "[-oo,+oo]".into(),
                nth: 0,
            },
        );
        d.fingerprint = fingerprint;
        if !open {
            d.status = Status::Discharged {
                method: DischargeMethod::Octagon,
                pack: "{x}".into(),
                reason: "x >= 1".into(),
            };
        }
        d
    }

    #[test]
    fn diff_open_classifies_by_fingerprint() {
        let current = [diag(1, false, true), diag(3, true, true)];
        let baseline = [diag(1, false, true), diag(2, false, true)];
        let diff = diff_open(&current, &baseline);
        assert_eq!(diff.new, vec![3]);
        assert_eq!(diff.fixed, vec![2]);
        assert_eq!(diff.unchanged, 1);
        assert_eq!(diff.new_definite, 1);
    }

    #[test]
    fn diff_open_ignores_discharged_on_both_sides() {
        // A discharged alarm is not outstanding: discharging it reads as
        // `fixed`, and a discharged baseline entry cannot absorb a live one.
        let current = [diag(1, false, false), diag(2, true, true)];
        let baseline = [diag(1, false, true), diag(2, true, false)];
        let diff = diff_open(&current, &baseline);
        assert_eq!(diff.new, vec![2]);
        assert_eq!(diff.fixed, vec![1]);
        assert_eq!(diff.unchanged, 0);
        assert_eq!(diff.new_definite, 1);
    }

    #[test]
    fn diff_open_of_identical_sets_is_empty() {
        let run = [diag(5, true, true), diag(6, false, false)];
        let diff = diff_open(&run, &run);
        assert!(diff.new.is_empty() && diff.fixed.is_empty());
        assert_eq!(diff.unchanged, 1);
    }
}
