//! Run-over-run baseline diffing.
//!
//! `sga analyze --baseline old-report.json` classifies every diagnostic of
//! the current run against a previous report **by fingerprint**: a
//! fingerprint present in both runs is `unchanged`, one only in the
//! current run is `new`, one only in the baseline is `fixed`. Fingerprints
//! are compared as multisets, so two same-subject findings in one
//! procedure are matched pairwise, not collapsed.

use sga_utils::FxHashMap;

/// Summary of a baseline comparison.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BaselineDiff {
    /// Fingerprints present now but not in the baseline.
    pub new: Vec<u64>,
    /// Fingerprints present in the baseline but gone now.
    pub fixed: Vec<u64>,
    /// Count of fingerprints present in both.
    pub unchanged: usize,
    /// How many of the `new` findings are open and definite — the CI
    /// gate's failure condition.
    pub new_definite: usize,
}

/// Classification of one current diagnostic.
pub const NEW: &str = "new";
/// Classification of a diagnostic matched in the baseline.
pub const UNCHANGED: &str = "unchanged";

/// Compares the current run's `(fingerprint, open-and-definite)` pairs
/// against the baseline's fingerprints. Returns the per-diagnostic
/// classification (aligned with `current`) plus the summary.
pub fn classify(current: &[(u64, bool)], baseline: &[u64]) -> (Vec<&'static str>, BaselineDiff) {
    let mut remaining: FxHashMap<u64, usize> = FxHashMap::default();
    for &fp in baseline {
        *remaining.entry(fp).or_insert(0) += 1;
    }
    let mut classes = Vec::with_capacity(current.len());
    let mut diff = BaselineDiff::default();
    for &(fp, definite) in current {
        match remaining.get_mut(&fp) {
            Some(n) if *n > 0 => {
                *n -= 1;
                diff.unchanged += 1;
                classes.push(UNCHANGED);
            }
            _ => {
                diff.new.push(fp);
                if definite {
                    diff.new_definite += 1;
                }
                classes.push(NEW);
            }
        }
    }
    let mut fixed: Vec<u64> = remaining
        .into_iter()
        .flat_map(|(fp, n)| std::iter::repeat_n(fp, n))
        .collect();
    fixed.sort_unstable();
    diff.fixed = fixed;
    diff.new.sort_unstable();
    (classes, diff)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_diff_is_all_unchanged() {
        let cur = [(1u64, true), (2, false), (2, false)];
        let base = [1u64, 2, 2];
        let (classes, diff) = classify(&cur, &base);
        assert_eq!(classes, vec![UNCHANGED; 3]);
        assert_eq!(diff.unchanged, 3);
        assert!(diff.new.is_empty() && diff.fixed.is_empty());
        assert_eq!(diff.new_definite, 0);
    }

    #[test]
    fn multiset_matching_pairs_duplicates() {
        // Two copies now, one before: exactly one is new.
        let (classes, diff) = classify(&[(7, false), (7, true)], &[7]);
        assert_eq!(classes, vec![UNCHANGED, NEW]);
        assert_eq!(diff.new, vec![7]);
        assert_eq!(diff.new_definite, 1);
    }

    #[test]
    fn fixed_are_the_leftovers() {
        let (_, diff) = classify(&[(1, false)], &[1, 2, 2]);
        assert_eq!(diff.fixed, vec![2, 2]);
        assert_eq!(diff.unchanged, 1);
    }

    #[test]
    fn new_definite_counts_only_definite() {
        let (_, diff) = classify(&[(3, false), (4, true)], &[]);
        assert_eq!(diff.new.len(), 2);
        assert_eq!(diff.new_definite, 1);
    }
}
