//! SARIF 2.1.0 emission.
//!
//! `sga check --sarif out.sarif` serializes the diagnostics of one
//! translation unit as a single-run SARIF log. The mapping:
//!
//! | diagnostic                | `level`   | `kind` |
//! |---------------------------|-----------|--------|
//! | open, definite            | `error`   | `fail` |
//! | open, possible            | `warning` | `fail` |
//! | discharged                | `none`    | `pass` |
//!
//! The stable content fingerprint is exported under
//! `partialFingerprints["sga/v1"]`, which SARIF consumers use for
//! run-over-run matching — the same contract as `--baseline`.

use crate::{DiagKind, Diagnostic, Severity};
use sga_utils::Json;

/// Tool name recorded in the SARIF `driver`.
const TOOL_NAME: &str = "sga";
/// Tool version recorded in the SARIF `driver`.
const TOOL_VERSION: &str = env!("CARGO_PKG_VERSION");

fn rule_description(kind: DiagKind) -> &'static str {
    match kind {
        DiagKind::BufferOverrun => "Array access offset may exceed the accessed block's size.",
        DiagKind::NullDeref => "Dereferenced pointer value may be null.",
        DiagKind::DivByZero => "Divisor of a division or modulo may be zero.",
        DiagKind::UninitRead => "Local variable may be read before any assignment.",
    }
}

/// Builds a complete SARIF 2.1.0 log for one artifact's diagnostics.
pub fn to_sarif(artifact_uri: &str, diags: &[Diagnostic]) -> Json {
    let rules: Vec<Json> = DiagKind::ALL
        .into_iter()
        .map(|k| {
            Json::obj().with("id", k.id()).with(
                "shortDescription",
                Json::obj().with("text", rule_description(k)),
            )
        })
        .collect();

    let results: Vec<Json> = diags
        .iter()
        .map(|d| {
            let (level, result_kind) = match d.severity() {
                Severity::Error => ("error", "fail"),
                Severity::Warning => ("warning", "fail"),
                Severity::Note => ("none", "pass"),
            };
            let rule_index = DiagKind::ALL
                .iter()
                .position(|&k| k == d.kind)
                .expect("every kind is a rule");
            Json::obj()
                .with("ruleId", d.kind.id())
                .with("ruleIndex", rule_index)
                .with("level", level)
                .with("kind", result_kind)
                .with("message", Json::obj().with("text", d.to_string()))
                .with(
                    "locations",
                    Json::Arr(vec![Json::obj().with(
                        "physicalLocation",
                        Json::obj()
                            .with("artifactLocation", Json::obj().with("uri", artifact_uri))
                            .with("region", Json::obj().with("startLine", d.line.max(1))),
                    )]),
                )
                .with(
                    "partialFingerprints",
                    Json::obj().with("sga/v1", format!("{:016x}", d.fingerprint)),
                )
        })
        .collect();

    Json::obj()
        .with("$schema", "https://json.schemastore.org/sarif-2.1.0.json")
        .with("version", "2.1.0")
        .with(
            "runs",
            Json::Arr(vec![Json::obj()
                .with(
                    "tool",
                    Json::obj().with(
                        "driver",
                        Json::obj()
                            .with("name", TOOL_NAME)
                            .with("version", TOOL_VERSION)
                            .with("rules", Json::Arr(rules)),
                    ),
                )
                .with(
                    "artifacts",
                    Json::Arr(vec![
                        Json::obj().with("location", Json::obj().with("uri", artifact_uri))
                    ]),
                )
                .with("results", Json::Arr(results))]),
        )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{assign_fingerprints, schema, DischargeMethod, Evidence, Status};
    use sga_ir::{Cp, NodeId, ProcId};
    use sga_utils::Idx;

    fn diags() -> Vec<Diagnostic> {
        let mut v = vec![
            Diagnostic::new(
                DiagKind::BufferOverrun,
                Cp::new(ProcId::new(0), NodeId::new(4)),
                9,
                "main",
                None,
                "buf",
                true,
                Evidence::Overrun {
                    offset: "[4,4]".into(),
                    size: "[4,4]".into(),
                    block: "alloc@p0:1".into(),
                    alloc: Some((0, 1)),
                },
            ),
            Diagnostic::new(
                DiagKind::DivByZero,
                Cp::new(ProcId::new(0), NodeId::new(7)),
                12,
                "main",
                None,
                "n - m",
                false,
                Evidence::DivByZero {
                    divisor: "[-oo,+oo]".into(),
                    nth: 0,
                },
            ),
        ];
        v[1].status = Status::Discharged {
            method: DischargeMethod::Octagon,
            pack: "{m,n}".into(),
            reason: "n - m in [1,+oo]".into(),
        };
        assign_fingerprints(&mut v);
        v
    }

    #[test]
    fn emits_expected_levels_and_fingerprints() {
        let log = to_sarif("tests/alarms/x.c", &diags());
        let runs = log.get("runs").unwrap().as_arr().unwrap();
        let results = runs[0].get("results").unwrap().as_arr().unwrap();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].get("level").unwrap().as_str(), Some("error"));
        assert_eq!(results[0].get("kind").unwrap().as_str(), Some("fail"));
        assert_eq!(results[1].get("level").unwrap().as_str(), Some("none"));
        assert_eq!(results[1].get("kind").unwrap().as_str(), Some("pass"));
        let fp = results[0]
            .get("partialFingerprints")
            .unwrap()
            .get("sga/v1")
            .unwrap()
            .as_str()
            .unwrap();
        assert_eq!(fp.len(), 16);
    }

    #[test]
    fn validates_against_vendored_schema() {
        let log = to_sarif("x.c", &diags());
        let errors = schema::validate(&log, &schema::vendored_sarif_schema());
        assert!(errors.is_empty(), "schema violations: {errors:?}");
    }

    #[test]
    fn empty_log_is_still_valid() {
        let log = to_sarif("x.c", &[]);
        let errors = schema::validate(&log, &schema::vendored_sarif_schema());
        assert!(errors.is_empty(), "schema violations: {errors:?}");
    }
}
